package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"realroots/internal/trace"
)

func TestQueueDepthAndStats(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	// Block the single worker so submissions pile up measurably.
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	p.Submit(func() { started.Done(); <-release })
	started.Wait()

	for i := 0; i < 5; i++ {
		p.Submit(func() {})
	}
	if d := p.QueueDepth(); d != 5 {
		t.Errorf("QueueDepth = %d, want 5", d)
	}
	close(release)
	p.Wait()

	st := p.Stats()
	if st.Workers != 1 {
		t.Errorf("Stats.Workers = %d, want 1", st.Workers)
	}
	if st.Executed != 6 {
		t.Errorf("Stats.Executed = %d, want 6", st.Executed)
	}
	if st.MaxQueueDepth < 5 {
		t.Errorf("Stats.MaxQueueDepth = %d, want >= 5", st.MaxQueueDepth)
	}
	if st.Panics != 0 || st.Retries != 0 {
		t.Errorf("Stats = %+v, want zero panics/retries", st)
	}
	if d := p.QueueDepth(); d != 0 {
		t.Errorf("QueueDepth after Wait = %d, want 0", d)
	}
}

func TestStatsCountsPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Wait()
	if got := p.Stats().Panics; got != 1 {
		t.Errorf("Stats.Panics = %d, want 1", got)
	}
	var pe *PanicError
	if !errors.As(p.Err(), &pe) {
		t.Errorf("Err = %v, want PanicError", p.Err())
	}
}

func TestStatsCountsRetries(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var calls atomic.Int64
	p.SubmitRetry(3, func() error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	p.Wait()
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if got := p.Stats().Retries; got != 2 {
		t.Errorf("Stats.Retries = %d, want 2", got)
	}
}

func TestTracerRecordsWorkerSpans(t *testing.T) {
	tr := trace.New()
	p := NewPool(3)
	p.SetTracer(tr)
	const n = 24
	for i := 0; i < n; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Submit(func() {}) // default tag
	p.Wait()
	p.Close()

	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	lanes := tr.Lanes()
	if len(lanes) == 0 || len(lanes) > 3 {
		t.Fatalf("got %d lanes, want 1..3", len(lanes))
	}
	total, tagged := 0, 0
	for _, l := range lanes {
		if l.ID < 0 || l.ID > 2 {
			t.Errorf("unexpected lane ID %d", l.ID)
		}
		for _, s := range l.Spans() {
			if s.Cat != trace.CatTask {
				t.Errorf("span cat = %q, want task", s.Cat)
			}
			total++
			if s.Name == "interval" {
				tagged++
			}
		}
	}
	if total != n+1 {
		t.Errorf("recorded %d spans, want %d", total, n+1)
	}
	if tagged != n {
		t.Errorf("%d interval-tagged spans, want %d", tagged, n)
	}
	if len(tr.Counters()) != total {
		t.Errorf("%d queue-depth samples, want %d", len(tr.Counters()), total)
	}
}

func TestTracedGateAndParallelForTags(t *testing.T) {
	tr := trace.New()
	p := NewPool(2)
	p.SetTracer(tr)
	g := NewGateTagged(p, 2, "sort", func() {})
	_ = p.ParallelForTagged("precompute", 8, 4, func(i int) {})
	g.Done()
	g.Done()
	p.Wait()
	p.Close()

	byTag := map[string]int{}
	for _, l := range tr.Lanes() {
		for _, s := range l.Spans() {
			byTag[s.Name]++
		}
	}
	if byTag["precompute"] != 2 {
		t.Errorf("precompute spans = %d, want 2 (8 iterations / grain 4)", byTag["precompute"])
	}
	if byTag["sort"] != 1 {
		t.Errorf("sort spans = %d, want 1", byTag["sort"])
	}
}

func TestTracedSimulatedPool(t *testing.T) {
	tr := trace.New()
	p := NewSimulatedPool(4)
	p.SetTracer(tr)
	for i := 0; i < 6; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Wait()
	p.Close()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	lanes := tr.Lanes()
	if len(lanes) != 1 {
		t.Fatalf("simulated pool has %d lanes, want 1 (one real worker)", len(lanes))
	}
	if got := len(lanes[0].Spans()); got != 6 {
		t.Errorf("spans = %d, want 6", got)
	}
}

// TestUntracedPoolUnchanged pins the no-tracer behavior: no lanes, no
// samples, stats still counted.
func TestUntracedPoolUnchanged(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < 10; i++ {
		p.Submit(func() {})
	}
	p.Wait()
	if got := p.Executed(); got != 10 {
		t.Errorf("Executed = %d, want 10", got)
	}
}

package sched

import (
	"time"
)

// Simulation mode. The paper measured speedups on a 20-processor
// Sequent Symmetry; when such hardware is unavailable (this repository
// is routinely exercised on single-core containers), a simulated pool
// executes the *real* task graph on one OS worker while list-scheduling
// the measured task durations onto P virtual processors:
//
//   - each task is assigned, in execution order (a valid topological
//     order of the dependency graph, because tasks are only submitted
//     once their dependencies complete), to the virtual processor with
//     the earliest available time;
//   - a task's virtual start is max(processor available, task ready),
//     where the ready time is the virtual moment its submitting task
//     reached the Submit call;
//   - the simulated makespan is the latest virtual completion.
//
// This is Graham-style greedy list scheduling driven by measured
// durations; it reproduces the paper's speedup *shape* (near-linear for
// small P, tailing off when the task granularity cannot fill 16
// processors) without parallel hardware. On a real multicore host the
// same experiments can be run with wall-clock speedups instead.
type simState struct {
	procs    []time.Duration // virtual availability per processor
	makespan time.Duration
	work     time.Duration // Σ task durations (= 1-processor makespan)

	// Current-task context (there is exactly one real worker).
	inTask   bool
	curStart time.Duration
	curReal  time.Time
}

// NewSimulatedPool returns a pool that executes tasks on one real
// worker while simulating the given number of virtual processors.
func NewSimulatedPool(virtualWorkers int) *Pool {
	if virtualWorkers < 1 {
		panic("sched: invalid virtual worker count")
	}
	p := NewPool(1)
	p.mu.Lock()
	p.sim = &simState{procs: make([]time.Duration, virtualWorkers)}
	p.mu.Unlock()
	return p
}

// Simulated reports whether the pool is in simulation mode.
func (p *Pool) Simulated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sim != nil
}

// SimStats returns the simulated makespan and the total measured task
// work (the one-processor makespan). It is only meaningful after Wait.
func (p *Pool) SimStats() (makespan, work time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sim == nil {
		return 0, 0
	}
	return p.sim.makespan, p.sim.work
}

// simReadyTime computes the virtual ready time for a task being
// submitted right now: the submitting task's current virtual moment, or
// the current makespan for submissions from outside the pool (barrier
// semantics, matching how the algorithm's stages hand off). The caller
// must hold p.mu.
func (p *Pool) simReadyTime() time.Duration {
	if p.sim == nil {
		return 0
	}
	if p.sim.inTask {
		return p.sim.curStart + time.Since(p.sim.curReal)
	}
	return p.sim.makespan
}

// simBegin assigns the task to a virtual processor and records the
// running-task context; it returns the processor index and start time.
func (p *Pool) simBegin(ready time.Duration) (proc int, start time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sim
	proc = 0
	for i, avail := range s.procs {
		if avail < s.procs[proc] {
			proc = i
		}
	}
	start = s.procs[proc]
	if ready > start {
		start = ready
	}
	s.inTask = true
	s.curStart = start
	s.curReal = time.Now()
	return proc, start
}

// simEnd closes the running-task context, measuring the task's duration
// from the same origin simBegin recorded (so that ready times handed to
// submitted tasks can never exceed the submitter's completion).
func (p *Pool) simEnd(proc int, start time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sim
	d := time.Since(s.curReal)
	end := start + d
	s.procs[proc] = end
	if end > s.makespan {
		s.makespan = end
	}
	s.work += d
	s.inTask = false
}

// Package sched implements the dynamic-scheduling work pool described in
// §3 of the paper: the algorithm's computations are divided into tasks
// kept in a task queue; whenever a processor becomes free it picks the
// first task from the queue, and completing a task usually causes other
// tasks to be added. Workers are goroutines; the worker count plays the
// role of the paper's processor count (1..19 on the Sequent Symmetry).
//
// Tasks must never block waiting for other tasks: dependencies are
// expressed with After/NewGate continuation counters, exactly like the
// per-node status records the paper uses for synchronization (§3.2).
//
// Unlike the paper's dedicated processors, pool workers survive task
// failures: a panicking task is recovered into a first-failure error
// (Err) and cancels the pool, after which the remaining queue is
// drained without executing — Wait always returns, Close never leaks a
// worker, and the caller observes one typed error instead of a crashed
// process or a hung Wait.
package sched

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"realroots/internal/trace"
)

// ErrPoolCanceled is the error recorded by Cancel(nil).
var ErrPoolCanceled = errors.New("sched: pool canceled")

// A PanicError is the first-failure error recorded when a task panics.
// The worker that ran the task survives; the panic value and stack are
// preserved here for diagnosis.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
	Label string // pool label at recovery (see SetLabel), "" if unset
}

func (e *PanicError) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("sched: task panicked (label %s): %v", e.Label, e.Value)
	}
	return fmt.Sprintf("sched: task panicked: %v", e.Value)
}

// A Pool is a fixed set of worker goroutines draining a dynamic FIFO
// task queue. Create one with NewPool and release it with Close.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []queued
	closed   bool
	taskHook func(seq int64) // fault-injection / tracing hook (see SetTaskHook)
	tracer   *trace.Tracer   // nil = tracing disabled (see SetTracer)
	observer Observer        // nil = no lifecycle callbacks (see SetObserver)
	label    string          // attribution tag for failures (see SetLabel)
	maxQueue int             // high-water mark of len(queue), under mu

	outstanding atomic.Int64 // queued + running tasks
	idleMu      sync.Mutex
	idleCond    *sync.Cond

	workers  int
	executed atomic.Int64 // total tasks run to completion (diagnostics)
	panics   atomic.Int64 // panics recovered from tasks (incl. ParallelFor bodies)
	retries  atomic.Int64 // SubmitRetry re-executions after a transient failure
	seq      atomic.Int64 // task sequence numbers handed to the hook

	cancelCh   chan struct{} // closed on first Cancel/failure
	cancelOnce sync.Once
	failMu     sync.Mutex
	failErr    error // first failure; nil while healthy

	sim *simState // non-nil in simulation mode (see sim.go)
}

// DefaultTag is the task tag used by the untagged Submit/NewGate/
// ParallelFor entry points; tagged variants let callers label the task
// kind (the paper's Fig. 3.2 taxonomy) for trace timelines.
const DefaultTag = "task"

// queued is one queue entry: the task plus its tag (for trace spans),
// its submission time relative to the tracer epoch (zero when tracing
// is off), and its simulated ready time (zero outside simulation mode).
type queued struct {
	f      func()
	tag    string
	enq    time.Duration
	vready time.Duration
}

// NewPool starts a pool with the given number of workers (≥ 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: invalid worker count %d", workers))
	}
	p := &Pool{workers: workers, cancelCh: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.idleMu)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Executed returns the number of tasks the pool has run to completion
// (panicked and drained-after-cancel tasks are not counted).
func (p *Pool) Executed() int64 { return p.executed.Load() }

// QueueDepth returns the number of tasks currently waiting in the
// queue (excluding running tasks). It is a point-in-time sample:
// workers may dequeue concurrently.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// PoolStats is a point-in-time snapshot of the pool's execution
// counters.
type PoolStats struct {
	Workers       int   // fixed worker count
	Executed      int64 // tasks run to completion
	Panics        int64 // task panics recovered into pool failures
	Retries       int64 // SubmitRetry re-executions after transient errors
	MaxQueueDepth int   // high-water mark of the queue length
}

// Stats returns a snapshot of the pool's execution counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	maxQ := p.maxQueue
	p.mu.Unlock()
	return PoolStats{
		Workers:       p.workers,
		Executed:      p.executed.Load(),
		Panics:        p.panics.Load(),
		Retries:       p.retries.Load(),
		MaxQueueDepth: maxQ,
	}
}

// SetTracer attaches a tracer: every executed task is recorded as a
// span (named by its tag) on the executing worker's lane, with the
// queue latency between submission and start, and the queue depth is
// sampled at each dequeue. Install it before submitting work; a nil
// tracer (the default) adds no allocations to the submit/execute path.
func (p *Pool) SetTracer(tr *trace.Tracer) {
	p.mu.Lock()
	p.tracer = tr
	p.mu.Unlock()
}

// SetLabel tags the pool with the identity of the work it is running
// (rootd sets the owning request ID). The label travels on PanicError,
// so a panic surfacing minutes later in a log still names the request
// that triggered it.
func (p *Pool) SetLabel(label string) {
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// getLabel reads the label for panic attribution.
func (p *Pool) getLabel() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.label
}

// An Observer receives task-lifecycle callbacks from the pool: span
// boundaries on the executing worker's lane plus panic and retry
// events. It is the telemetry feed — internal/telemetry's *Run
// satisfies it structurally, so sched needs no telemetry import.
// Implementations must be safe for concurrent use from all workers and
// cheap: callbacks run on the worker's critical path.
type Observer interface {
	// TaskStart is called on the executing worker before the task runs.
	TaskStart(worker int, tag string)
	// TaskDone is called on the executing worker after the task
	// returns, including after an isolated panic (TaskPanic fires in
	// between, so a panicking task still produces a balanced
	// start/done pair).
	TaskDone(worker int, tag string)
	// TaskPanic is called when a task panic is recovered. worker is -1
	// for panics isolated inside ParallelFor bodies, whose recovery
	// happens in the chunk closure rather than the worker loop.
	TaskPanic(worker int, tag string, v any)
	// TaskRetry is called when SubmitRetry requeues a failed attempt;
	// left is the number of attempts remaining.
	TaskRetry(tag string, left int)
}

// SetObserver installs the pool's lifecycle observer. Install it
// before submitting work; a nil observer (the default) adds no
// allocations to the execute path.
func (p *Pool) SetObserver(o Observer) {
	p.mu.Lock()
	p.observer = o
	p.mu.Unlock()
}

// getObserver reads the observer outside the worker loop (retry and
// ParallelFor panic paths).
func (p *Pool) getObserver() Observer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.observer
}

// SetTaskHook installs a hook invoked at the start of every task with a
// monotonically increasing sequence number (0, 1, 2, …, in execution
// order). It is the fault-injection point: the hook may sleep to delay
// the task, panic (recovered like any task panic), or trigger external
// cancellation. Install it before submitting work.
func (p *Pool) SetTaskHook(h func(seq int64)) {
	p.mu.Lock()
	p.taskHook = h
	p.mu.Unlock()
}

// Cancel records err as the pool's failure (first failure wins; nil
// means ErrPoolCanceled) and cancels the pool: queued tasks are drained
// without executing, and Wait returns once running tasks finish. The
// pool stays structurally usable (Close still works); it only refuses
// to start new work.
func (p *Pool) Cancel(err error) {
	if err == nil {
		err = ErrPoolCanceled
	}
	p.fail(err)
}

// fail records the first failure and cancels the pool. The error is
// published before the cancellation channel closes, so any observer of
// Canceled()/Done() sees a non-nil Err.
func (p *Pool) fail(err error) {
	p.failMu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.failMu.Unlock()
	p.cancelOnce.Do(func() { close(p.cancelCh) })
}

// Err returns the pool's first failure: a *PanicError from a panicked
// task, the error given to Cancel, or a retry-exhaustion error from
// SubmitRetry. It is nil while the pool is healthy.
func (p *Pool) Err() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failErr
}

// Canceled reports whether the pool has been canceled or has failed.
func (p *Pool) Canceled() bool {
	select {
	case <-p.cancelCh:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the pool is canceled or fails.
func (p *Pool) Done() <-chan struct{} { return p.cancelCh }

func (p *Pool) worker(id int) {
	var lane *trace.Lane // cached worker timeline; created on first traced task
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed && len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		depth := len(p.queue)
		simulated := p.sim != nil
		hook := p.taskHook
		tr := p.tracer
		obs := p.observer
		p.mu.Unlock()

		if tr != nil && lane == nil {
			lane = tr.Lane(id, "worker-"+strconv.Itoa(id))
		}

		switch {
		case p.Canceled():
			// Drain without executing: the task's completion obligations
			// (gates, dependents) are abandoned, but the outstanding
			// count still reaches zero so Wait returns.
		case simulated:
			proc, start := p.simBegin(task.vready)
			p.traceTask(id, tr, lane, task, depth, hook, obs)
			p.simEnd(proc, start)
		default:
			p.traceTask(id, tr, lane, task, depth, hook, obs)
		}
		if p.outstanding.Add(-1) == 0 {
			p.idleMu.Lock()
			p.idleCond.Broadcast()
			p.idleMu.Unlock()
		}
	}
}

// traceTask runs one task, wrapped in a worker-lane span and a
// queue-depth sample when tracing is enabled. With tr == nil it is
// exactly runTask.
func (p *Pool) traceTask(id int, tr *trace.Tracer, lane *trace.Lane, task queued, depth int, hook func(int64), obs Observer) {
	if tr == nil {
		p.runTask(id, task, hook, obs)
		return
	}
	tr.CounterSample("queue depth", int64(depth))
	var wait time.Duration
	if task.enq > 0 {
		wait = tr.Now() - task.enq
	}
	lane.BeginAt(task.tag, trace.CatTask, wait)
	defer lane.End()
	p.runTask(id, task, hook, obs)
}

// runTask executes one task with panic isolation: a panic (from the
// task or the hook) becomes the pool's first-failure error and cancels
// the pool; the worker goroutine survives. The observer sees
// TaskStart before the task and TaskDone after it — with TaskPanic in
// between when the task panicked (the deferred calls unwind in that
// order).
func (p *Pool) runTask(id int, task queued, hook func(int64), obs Observer) {
	if obs != nil {
		obs.TaskStart(id, task.tag)
		defer obs.TaskDone(id, task.tag)
	}
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			if obs != nil {
				obs.TaskPanic(id, task.tag, r)
			}
			p.fail(&PanicError{Value: r, Stack: debug.Stack(), Label: p.getLabel()})
		}
	}()
	if hook != nil {
		hook(p.seq.Add(1) - 1)
	}
	task.f()
	p.executed.Add(1)
}

// Submit enqueues a ready-to-run task. It never blocks and may be called
// from inside other tasks. On a canceled pool the task is accepted but
// drained without executing.
func (p *Pool) Submit(task func()) {
	p.SubmitTagged(DefaultTag, task)
}

// SubmitTagged is Submit with a task-kind tag: the tag names the
// task's span on the executing worker's trace timeline. Tags should be
// small constant strings (e.g. the paper's Fig. 3.2 kinds).
func (p *Pool) SubmitTagged(tag string, task func()) {
	p.outstanding.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed pool")
	}
	var enq time.Duration
	if p.tracer != nil {
		enq = p.tracer.Now()
	}
	p.queue = append(p.queue, queued{f: task, tag: tag, enq: enq, vready: p.simReadyTime()})
	if len(p.queue) > p.maxQueue {
		p.maxQueue = len(p.queue)
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// SubmitRetry enqueues a task that may fail transiently: if task returns
// a non-nil error it is requeued, up to attempts executions in total;
// exhausting the attempts records the last error as the pool's failure
// and cancels the pool. A panic is never retried — it is a first-class
// failure like any other task panic.
func (p *Pool) SubmitRetry(attempts int, task func() error) {
	if attempts < 1 {
		attempts = 1
	}
	var run func(left int)
	run = func(left int) {
		if err := task(); err != nil {
			if left > 1 {
				p.retries.Add(1)
				if obs := p.getObserver(); obs != nil {
					obs.TaskRetry("retry", left-1)
				}
				p.SubmitTagged("retry", func() { run(left - 1) })
				return
			}
			p.fail(fmt.Errorf("sched: task failed after %d attempts: %w", attempts, err))
		}
	}
	p.Submit(func() { run(attempts) })
}

// Wait blocks until every submitted task (including tasks submitted by
// running tasks) has completed or been drained after cancellation. It
// must not be called from inside a task. After Wait, check Err: a
// non-nil Err means the run was cut short and dependent results are
// incomplete.
func (p *Pool) Wait() {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for p.outstanding.Load() != 0 {
		p.idleCond.Wait()
	}
}

// Close shuts the pool down after the queue drains. The pool must not be
// used afterwards.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ParallelFor runs f(i) for i in [0, n) on the pool and blocks until all
// iterations finish or the pool is canceled, in which case it returns
// the pool's error without waiting for the drained iterations (the
// caller must not read results produced by f after a non-nil return:
// a straggler iteration may still be running). Iterations are batched
// into contiguous chunks of the given grain (grain ≤ 0 means one
// iteration per task — the paper's finest granularity). It must not be
// called from inside a task.
func (p *Pool) ParallelFor(n, grain int, f func(i int)) error {
	return p.ParallelForTagged(DefaultTag, n, grain, f)
}

// ParallelForTagged is ParallelFor with a task-kind tag for the chunk
// tasks' trace spans.
func (p *Pool) ParallelForTagged(tag string, n, grain int, f func(i int)) error {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	var remaining atomic.Int64
	remaining.Store(int64(chunks))
	done := make(chan struct{})
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		p.SubmitTagged(tag, func() {
			// Record a panic before the decrement becomes visible, so a
			// ParallelFor woken by the final decrement always observes
			// the failure in Err.
			defer func() {
				if r := recover(); r != nil {
					p.panics.Add(1)
					if obs := p.getObserver(); obs != nil {
						obs.TaskPanic(-1, tag, r)
					}
					p.fail(&PanicError{Value: r, Stack: debug.Stack(), Label: p.getLabel()})
				}
				if remaining.Add(-1) == 0 {
					close(done)
				}
			}()
			for i := lo; i < hi; i++ {
				f(i)
			}
		})
	}
	select {
	case <-done:
		// All chunks ran; the pool may still have failed concurrently
		// (e.g. another phase's task), but this loop's results are
		// complete. Report the failure anyway: callers must stop.
		return p.Err()
	case <-p.cancelCh:
		return p.Err()
	}
}

// A Gate fires a task once a fixed number of prerequisite completions
// have been signalled. It is the scheduler-side analogue of the paper's
// per-node status data structures: "completion of a certain task at a
// node would cause an update of that node's status [which] enables the
// execution of another task" (§3.2).
type Gate struct {
	remaining atomic.Int32
	pool      *Pool
	tag       string
	task      func()
}

// NewGate creates a gate that submits task to the pool after need
// completions. If need is 0 the task is submitted immediately.
func NewGate(pool *Pool, need int, task func()) *Gate {
	return NewGateTagged(pool, need, DefaultTag, task)
}

// NewGateTagged is NewGate with a task-kind tag for the gated task's
// trace span.
func NewGateTagged(pool *Pool, need int, tag string, task func()) *Gate {
	g := &Gate{pool: pool, tag: tag, task: task}
	g.remaining.Store(int32(need))
	if need == 0 {
		pool.SubmitTagged(tag, task)
	}
	return g
}

// Done signals one completed prerequisite; the last one enqueues the
// gated task.
func (g *Gate) Done() {
	if n := g.remaining.Add(-1); n == 0 {
		g.pool.SubmitTagged(g.tag, g.task)
	} else if n < 0 {
		panic("sched: Gate.Done called too many times")
	}
}

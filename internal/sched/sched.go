// Package sched implements the dynamic-scheduling work pool described in
// §3 of the paper: the algorithm's computations are divided into tasks
// kept in a task queue; whenever a processor becomes free it picks the
// first task from the queue, and completing a task usually causes other
// tasks to be added. Workers are goroutines; the worker count plays the
// role of the paper's processor count (1..19 on the Sequent Symmetry).
//
// Tasks must never block waiting for other tasks: dependencies are
// expressed with After/NewGate continuation counters, exactly like the
// per-node status records the paper uses for synchronization (§3.2).
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// A Pool is a fixed set of worker goroutines draining a dynamic FIFO
// task queue. Create one with NewPool and release it with Close.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool

	outstanding atomic.Int64 // queued + running tasks
	idleMu      sync.Mutex
	idleCond    *sync.Cond

	workers  int
	executed atomic.Int64 // total tasks run (diagnostics)

	sim *simState // non-nil in simulation mode (see sim.go)
}

// queued is one queue entry: the task plus its simulated ready time
// (zero outside simulation mode).
type queued struct {
	f      func()
	vready time.Duration
}

// NewPool starts a pool with the given number of workers (≥ 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: invalid worker count %d", workers))
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.idleMu)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Executed returns the number of tasks the pool has completed.
func (p *Pool) Executed() int64 { return p.executed.Load() }

func (p *Pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed && len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		simulated := p.sim != nil
		p.mu.Unlock()

		if simulated {
			proc, start := p.simBegin(task.vready)
			task.f()
			p.simEnd(proc, start)
		} else {
			task.f()
		}
		p.executed.Add(1)
		if p.outstanding.Add(-1) == 0 {
			p.idleMu.Lock()
			p.idleCond.Broadcast()
			p.idleMu.Unlock()
		}
	}
}

// Submit enqueues a ready-to-run task. It never blocks and may be called
// from inside other tasks.
func (p *Pool) Submit(task func()) {
	p.outstanding.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed pool")
	}
	p.queue = append(p.queue, queued{f: task, vready: p.simReadyTime()})
	p.cond.Signal()
	p.mu.Unlock()
}

// Wait blocks until every submitted task (including tasks submitted by
// running tasks) has completed. It must not be called from inside a task.
func (p *Pool) Wait() {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for p.outstanding.Load() != 0 {
		p.idleCond.Wait()
	}
}

// Close shuts the pool down after the queue drains. The pool must not be
// used afterwards.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ParallelFor runs f(i) for i in [0, n) on the pool and blocks until all
// iterations finish. Iterations are batched into contiguous chunks of
// the given grain (grain ≤ 0 means one iteration per task — the paper's
// finest granularity). It must not be called from inside a task.
func (p *Pool) ParallelFor(n, grain int, f func(i int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		p.Submit(func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		})
	}
	wg.Wait()
}

// A Gate fires a task once a fixed number of prerequisite completions
// have been signalled. It is the scheduler-side analogue of the paper's
// per-node status data structures: "completion of a certain task at a
// node would cause an update of that node's status [which] enables the
// execution of another task" (§3.2).
type Gate struct {
	remaining atomic.Int32
	pool      *Pool
	task      func()
}

// NewGate creates a gate that submits task to the pool after need
// completions. If need is 0 the task is submitted immediately.
func NewGate(pool *Pool, need int, task func()) *Gate {
	g := &Gate{pool: pool, task: task}
	g.remaining.Store(int32(need))
	if need == 0 {
		pool.Submit(task)
	}
	return g
}

// Done signals one completed prerequisite; the last one enqueues the
// gated task.
func (g *Gate) Done() {
	if n := g.remaining.Add(-1); n == 0 {
		g.pool.Submit(g.task)
	} else if n < 0 {
		panic("sched: Gate.Done called too many times")
	}
}

// Package workload generates the input polynomials used by the tests,
// examples, and benchmark harness. The paper's evaluation inputs (§5)
// are characteristic polynomials of random symmetric 0-1 matrices;
// several classical all-real-rooted families (Wilkinson, Chebyshev,
// Hermite, Laguerre) are provided as well for tests and examples.
package workload

import (
	"math/rand"

	"realroots/internal/charpoly"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// CharPoly01 returns the characteristic polynomial of a random
// symmetric n×n 0-1 matrix drawn from the given seed — the paper's
// input distribution. The result is deterministic in (seed, n).
func CharPoly01(seed int64, n int) *poly.Poly {
	r := rand.New(rand.NewSource(seed))
	return charpoly.CharPoly(charpoly.RandomSymmetric01(r, n))
}

// SymmetricRows01 returns the rows of the random symmetric n×n 0-1
// matrix that CharPoly01 takes the characteristic polynomial of: the
// same seed yields the same matrix, so a matrix solve request built
// from these rows is the charpoly-input twin of the CharPoly01
// polynomial request. The solve-server load generator uses this to mix
// matrix and polynomial forms of one instance in a workload.
func SymmetricRows01(seed int64, n int) [][]int64 {
	r := rand.New(rand.NewSource(seed))
	m := charpoly.RandomSymmetric01(r, n)
	rows := make([][]int64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			rows[i][j] = m.At(i, j).Int64()
		}
	}
	return rows
}

// CharPolyBounded returns the characteristic polynomial of a random
// symmetric matrix with entries in [-bound, bound], giving larger
// coefficient sizes m(n) than the 0-1 case.
func CharPolyBounded(seed int64, n int, bound int64) *poly.Poly {
	r := rand.New(rand.NewSource(seed))
	return charpoly.CharPoly(charpoly.RandomSymmetric(r, n, bound))
}

// Wilkinson returns ∏_{i=1}^{n} (x - i), the classic ill-conditioned
// real-rooted polynomial.
func Wilkinson(n int) *poly.Poly {
	p := poly.FromInt64s(1)
	for i := 1; i <= n; i++ {
		p = p.MulLinear(mp.NewInt(int64(i)))
	}
	return p
}

// Chebyshev returns the Chebyshev polynomial of the first kind T_n,
// whose n roots are cos((2k-1)π/2n) ∈ (-1, 1).
func Chebyshev(n int) *poly.Poly {
	t0 := poly.FromInt64s(1)
	if n == 0 {
		return t0
	}
	t1 := poly.FromInt64s(0, 1)
	twoX := poly.FromInt64s(0, 2)
	for i := 1; i < n; i++ {
		t0, t1 = t1, twoX.Mul(t1).Sub(t0)
	}
	return t1
}

// Hermite returns the physicists' Hermite polynomial H_n
// (H_{k+1} = 2x·H_k - 2k·H_{k-1}), with integer coefficients and n
// distinct real roots.
func Hermite(n int) *poly.Poly {
	h0 := poly.FromInt64s(1)
	if n == 0 {
		return h0
	}
	h1 := poly.FromInt64s(0, 2)
	twoX := poly.FromInt64s(0, 2)
	for k := 1; k < n; k++ {
		h0, h1 = h1, twoX.Mul(h1).Sub(h0.ScaleInt(mp.NewInt(int64(2*k))))
	}
	return h1
}

// Laguerre returns the scaled Laguerre polynomial n!·L_n, which has
// integer coefficients and n distinct positive real roots
// (recurrence: Ľ_{k+1} = (2k+1-x)·Ľ_k - k²·Ľ_{k-1}).
func Laguerre(n int) *poly.Poly {
	l0 := poly.FromInt64s(1)
	if n == 0 {
		return l0
	}
	l1 := poly.FromInt64s(1, -1)
	for k := 1; k < n; k++ {
		a := poly.FromInt64s(int64(2*k+1), -1)
		l0, l1 = l1, a.Mul(l1).Sub(l0.ScaleInt(mp.NewInt(int64(k*k))))
	}
	return l1
}

// RandomIntRoots returns ∏ (x - r_k) for n distinct random integers
// r_k ∈ [-span, span], deterministic in the seed.
func RandomIntRoots(seed int64, n, span int) *poly.Poly {
	r := rand.New(rand.NewSource(seed))
	seen := map[int64]bool{}
	var roots []*mp.Int
	for len(roots) < n {
		v := int64(r.Intn(2*span+1) - span)
		if !seen[v] {
			seen[v] = true
			roots = append(roots, mp.NewInt(v))
		}
	}
	return poly.FromRoots(roots...)
}

// WithMultiplicities returns ∏ (x - r_k)^{m_k} for distinct random
// integer roots with multiplicities in [1, maxMult].
func WithMultiplicities(seed int64, nroots, span, maxMult int) *poly.Poly {
	r := rand.New(rand.NewSource(seed))
	seen := map[int64]bool{}
	p := poly.FromInt64s(1)
	count := 0
	for count < nroots {
		v := int64(r.Intn(2*span+1) - span)
		if seen[v] {
			continue
		}
		seen[v] = true
		count++
		m := 1 + r.Intn(maxMult)
		for j := 0; j < m; j++ {
			p = p.MulLinear(mp.NewInt(v))
		}
	}
	return p
}

// Legendre returns 2^n·P_n, the Legendre polynomial scaled to integer
// coefficients ((n+1)·A_{n+1} = 2(2n+1)x·A_n - 4n·A_{n-1} with exact
// divisions), with n distinct real roots in (-1, 1).
func Legendre(n int) *poly.Poly {
	a0 := poly.FromInt64s(1)
	if n == 0 {
		return a0
	}
	a1 := poly.FromInt64s(0, 2)
	for k := 1; k < n; k++ {
		x := poly.FromInt64s(0, int64(2*(2*k+1)))
		next := x.Mul(a1).Sub(a0.ScaleInt(mp.NewInt(int64(4 * k))))
		next = next.DivExactInt(mp.NewInt(int64(k + 1)))
		a0, a1 = a1, next
	}
	return a1
}

// Tridiagonal returns the characteristic polynomial of a random
// symmetric tridiagonal (Jacobi) matrix with diagonal entries in
// [-bound, bound] and non-zero off-diagonal entries in [1, bound]. Such
// matrices always have n *distinct* real eigenvalues, making this a
// guaranteed-squarefree workload; the three-term recurrence
// p_k = (x - a_k)·p_{k-1} - b_{k-1}²·p_{k-2} computes it in O(n²)
// coefficient operations (versus Θ(n⁴) for the dense Faddeev–LeVerrier
// route), so much larger degrees are reachable.
func Tridiagonal(seed int64, n int, bound int64) *poly.Poly {
	if n < 1 {
		panic("workload: Tridiagonal needs n ≥ 1")
	}
	r := rand.New(rand.NewSource(seed))
	prev := poly.FromInt64s(1) // p_0
	a1 := r.Int63n(2*bound+1) - bound
	cur := poly.FromInt64s(-a1, 1) // p_1 = x - a_1
	for k := 2; k <= n; k++ {
		ak := r.Int63n(2*bound+1) - bound
		bk := 1 + r.Int63n(bound) // non-zero
		lin := poly.FromInt64s(-ak, 1)
		next := lin.Mul(cur).Sub(prev.ScaleInt(mp.NewInt(bk * bk)))
		prev, cur = cur, next
	}
	return cur
}

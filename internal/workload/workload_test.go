package workload

import (
	"testing"

	"realroots/internal/charpoly"
	"realroots/internal/core"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
)

func TestCharPoly01Deterministic(t *testing.T) {
	a := CharPoly01(7, 10)
	b := CharPoly01(7, 10)
	if !a.Equal(b) {
		t.Fatal("CharPoly01 not deterministic")
	}
	c := CharPoly01(8, 10)
	if a.Equal(c) {
		t.Fatal("different seeds gave identical polynomials")
	}
	if a.Degree() != 10 || !a.Lead().IsOne() {
		t.Fatalf("degree %d lead %s", a.Degree(), a.Lead())
	}
}

func TestCharPolyRealRooted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := CharPoly01(seed, 12)
		s, err := remseq.Compute(p.SquarefreePart(), remseq.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestWilkinson(t *testing.T) {
	w := Wilkinson(5)
	if w.Degree() != 5 {
		t.Fatalf("degree %d", w.Degree())
	}
	for i := int64(1); i <= 5; i++ {
		if w.Eval(mp.NewInt(i)).Sign() != 0 {
			t.Errorf("W_5(%d) != 0", i)
		}
	}
	if w.Eval(mp.NewInt(0)).Sign() == 0 || w.Eval(mp.NewInt(6)).Sign() == 0 {
		t.Error("extra roots")
	}
}

func TestChebyshevKnownValues(t *testing.T) {
	// T_0..T_4: 1, x, 2x²-1, 4x³-3x, 8x⁴-8x²+1.
	want := []*poly.Poly{
		poly.FromInt64s(1),
		poly.FromInt64s(0, 1),
		poly.FromInt64s(-1, 0, 2),
		poly.FromInt64s(0, -3, 0, 4),
		poly.FromInt64s(1, 0, -8, 0, 8),
	}
	for n, w := range want {
		if got := Chebyshev(n); !got.Equal(w) {
			t.Errorf("T_%d = %s, want %s", n, got, w)
		}
	}
}

func TestHermiteKnownValues(t *testing.T) {
	// H_0..H_4: 1, 2x, 4x²-2, 8x³-12x, 16x⁴-48x²+12.
	want := []*poly.Poly{
		poly.FromInt64s(1),
		poly.FromInt64s(0, 2),
		poly.FromInt64s(-2, 0, 4),
		poly.FromInt64s(0, -12, 0, 8),
		poly.FromInt64s(12, 0, -48, 0, 16),
	}
	for n, w := range want {
		if got := Hermite(n); !got.Equal(w) {
			t.Errorf("H_%d = %s, want %s", n, got, w)
		}
	}
}

func TestLaguerreKnownValues(t *testing.T) {
	// n!·L_n: 1, 1-x, x²-4x+2, -x³+9x²-18x+6.
	want := []*poly.Poly{
		poly.FromInt64s(1),
		poly.FromInt64s(1, -1),
		poly.FromInt64s(2, -4, 1),
		poly.FromInt64s(6, -18, 9, -1),
	}
	for n, w := range want {
		if got := Laguerre(n); !got.Equal(w) {
			t.Errorf("%d!·L_%d = %s, want %s", n, n, got, w)
		}
	}
}

func TestOrthogonalFamiliesSolvable(t *testing.T) {
	// Every family member must be accepted end-to-end by the solver.
	for _, tc := range []struct {
		name string
		p    *poly.Poly
	}{
		{"chebyshev-9", Chebyshev(9)},
		{"hermite-8", Hermite(8)},
		{"laguerre-7", Laguerre(7)},
		{"wilkinson-10", Wilkinson(10)},
	} {
		res, err := core.FindRoots(tc.p, core.Options{Mu: 16})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Roots) != tc.p.Degree() {
			t.Fatalf("%s: %d roots for degree %d", tc.name, len(res.Roots), tc.p.Degree())
		}
		// Roots strictly increasing.
		for i := 1; i < len(res.Roots); i++ {
			if res.Roots[i-1].Cmp(res.Roots[i]) > 0 {
				t.Fatalf("%s: roots out of order", tc.name)
			}
		}
	}
}

func TestChebyshevRootsInUnitInterval(t *testing.T) {
	res, err := core.FindRoots(Chebyshev(11), core.Options{Mu: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Roots {
		v := r.Float64()
		if v < -1 || v > 1.001 {
			t.Fatalf("Chebyshev root %v outside [-1, 1]", v)
		}
	}
}

func TestRandomIntRoots(t *testing.T) {
	p := RandomIntRoots(3, 8, 100)
	if p.Degree() != 8 || !p.IsSquarefree() {
		t.Fatalf("degree %d squarefree %v", p.Degree(), p.IsSquarefree())
	}
	if !p.Equal(RandomIntRoots(3, 8, 100)) {
		t.Fatal("not deterministic")
	}
}

func TestWithMultiplicities(t *testing.T) {
	p := WithMultiplicities(4, 3, 20, 3)
	if p.IsSquarefree() && p.Degree() > 3 {
		t.Log("all multiplicities drew 1 — acceptable but unusual")
	}
	sf := p.SquarefreePart()
	if sf.Degree() != 3 {
		t.Fatalf("squarefree part degree %d, want 3", sf.Degree())
	}
}

func TestLegendreKnownValues(t *testing.T) {
	// 2^n·P_n: 1, 2x, 3x²-1, 5x³-3x (×2): 2^2·P_2 = (3x²-1)·2... P_2 =
	// (3x²-1)/2 → 4·P_2/2... A_2 = 2²·P_2 = 2(3x²-1) = 6x²-2.
	want := []*poly.Poly{
		poly.FromInt64s(1),
		poly.FromInt64s(0, 2),
		poly.FromInt64s(-2, 0, 6),
		poly.FromInt64s(0, -12, 0, 20), // 2³·P_3 = 8(5x³-3x)/2 = 20x³-12x
	}
	for n, w := range want {
		if got := Legendre(n); !got.Equal(w) {
			t.Errorf("2^%d·P_%d = %s, want %s", n, n, got, w)
		}
	}
}

func TestLegendreRootsInUnitInterval(t *testing.T) {
	res, err := core.FindRoots(Legendre(12), core.Options{Mu: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 12 {
		t.Fatalf("%d roots", len(res.Roots))
	}
	for _, r := range res.Roots {
		v := r.Float64()
		if v < -1 || v > 1.001 {
			t.Fatalf("Legendre root %v outside (-1, 1)", v)
		}
	}
}

func TestTridiagonalAlwaysSquarefree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := Tridiagonal(seed, 20, 5)
		if p.Degree() != 20 || !p.Lead().IsOne() {
			t.Fatalf("seed %d: degree %d lead %s", seed, p.Degree(), p.Lead())
		}
		if !p.IsSquarefree() {
			t.Fatalf("seed %d: Jacobi charpoly not squarefree", seed)
		}
	}
}

func TestTridiagonalSolvable(t *testing.T) {
	p := Tridiagonal(3, 25, 4)
	res, err := core.FindRoots(p, core.Options{Mu: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 25 {
		t.Fatalf("%d eigenvalues", len(res.Roots))
	}
	if !p.Equal(Tridiagonal(3, 25, 4)) {
		t.Fatal("not deterministic")
	}
}

func TestSymmetricRows01Twin(t *testing.T) {
	// The rows must be the exact matrix CharPoly01 characterizes: a
	// solve server receiving the matrix form computes the same
	// polynomial as a client sending the CharPoly01 form directly.
	for _, n := range []int{2, 5, 9} {
		rows := SymmetricRows01(42, n)
		if len(rows) != n {
			t.Fatalf("n=%d: %d rows", n, len(rows))
		}
		for i := range rows {
			if len(rows[i]) != n {
				t.Fatalf("n=%d: row %d has %d entries", n, i, len(rows[i]))
			}
			for j := range rows[i] {
				if rows[i][j] != rows[j][i] {
					t.Fatalf("n=%d: not symmetric at (%d,%d)", n, i, j)
				}
				if rows[i][j] != 0 && rows[i][j] != 1 {
					t.Fatalf("n=%d: entry (%d,%d) = %d, want 0 or 1", n, i, j, rows[i][j])
				}
			}
		}
		m, err := charpoly.FromRows(rows)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := charpoly.CharPoly(m)
		want := CharPoly01(42, n)
		if !got.Equal(want) {
			t.Fatalf("n=%d: charpoly of SymmetricRows01 differs from CharPoly01", n)
		}
	}
	if CharPoly01(43, 9).Equal(CharPoly01(42, 9)) {
		t.Fatal("different seeds gave identical matrices")
	}
}

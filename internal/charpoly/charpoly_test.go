package charpoly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/mp"
	"realroots/internal/poly"
)

// detCofactor computes det(A) by cofactor expansion — an independent
// O(n!) oracle for small matrices.
func detCofactor(a *Matrix) *mp.Int {
	n := a.n
	if n == 1 {
		return new(mp.Int).Set(a.At(0, 0))
	}
	det := new(mp.Int)
	for j := 0; j < n; j++ {
		if a.At(0, j).IsZero() {
			continue
		}
		sub := NewMatrix(n - 1)
		for i := 1; i < n; i++ {
			cj := 0
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				sub.Set(i-1, cj, a.At(i, k))
				cj++
			}
		}
		term := new(mp.Int).Mul(a.At(0, j), detCofactor(sub))
		if j%2 == 1 {
			term.Neg(term)
		}
		det.Add(det, term)
	}
	return det
}

// charPolyOracle computes det(λI - A) by evaluating the determinant at
// n+1 integer points and interpolating via Newton's divided differences
// scaled to integers — here simpler: evaluate det(kI - A) for k=0..n and
// compare against p(k).
func TestCharPolyMatchesDeterminantEvaluations(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(5)
		a := RandomSymmetric(r, n, 4)
		p := CharPoly(a)
		if p.Degree() != n || !p.Lead().IsOne() {
			t.Fatalf("charpoly degree %d lead %s, want monic degree %d", p.Degree(), p.Lead(), n)
		}
		for k := int64(-2); k <= int64(n); k++ {
			// det(kI - A) via cofactor oracle.
			m := NewMatrix(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := new(mp.Int).Neg(a.At(i, j))
					if i == j {
						v.Add(v, mp.NewInt(k))
					}
					m.Set(i, j, v)
				}
			}
			want := detCofactor(m)
			got := p.Eval(mp.NewInt(k))
			if got.Cmp(want) != 0 {
				t.Fatalf("p(%d) = %s, want det = %s (n=%d)", k, got, want, n)
			}
		}
	}
}

func TestCharPolyDiagonal(t *testing.T) {
	// Diagonal matrix diag(d1..dn) has char poly ∏(λ - di).
	d := []int64{3, -1, 4, 0}
	a := NewMatrix(4)
	roots := make([]*mp.Int, len(d))
	for i, v := range d {
		a.SetInt64(i, i, v)
		roots[i] = mp.NewInt(v)
	}
	got := CharPoly(a)
	want := poly.FromRoots(roots...)
	if !got.Equal(want) {
		t.Fatalf("charpoly(diag) = %s, want %s", got, want)
	}
}

func TestCharPolyTraceAndDet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := RandomSymmetric(r, n, 5)
		p := CharPoly(a)
		// Coefficient of λ^(n-1) is -tr(A).
		tr := new(mp.Int)
		for i := 0; i < n; i++ {
			tr.Add(tr, a.At(i, i))
		}
		if new(mp.Int).Neg(tr).Cmp(p.Coeff(n-1)) != 0 {
			return false
		}
		// Constant term is (-1)^n det(A).
		det := detCofactor(a)
		if n%2 != 0 {
			det.Neg(det)
		}
		return det.Cmp(p.Coeff(0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCharPolyDoesNotMutateInput(t *testing.T) {
	a, err := FromRows([][]int64{{1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	CharPoly(a)
	if a.At(0, 0).Int64() != 1 || a.At(1, 1).Int64() != 3 || a.At(0, 1).Int64() != 2 {
		t.Fatal("CharPoly mutated its input")
	}
}

func TestRandomSymmetric01(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := RandomSymmetric01(r, 10)
	if !m.IsSymmetric() {
		t.Fatal("not symmetric")
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			v := m.At(i, j).Int64()
			if v != 0 && v != 1 {
				t.Fatalf("entry (%d,%d) = %d", i, j, v)
			}
		}
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := FromRows([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]int64{{2, 1}, {1, 2}})
	if got := Det(a).Int64(); got != 3 {
		t.Errorf("det = %d, want 3", got)
	}
	b, _ := FromRows([][]int64{{0, 1}, {1, 0}})
	if got := Det(b).Int64(); got != -1 {
		t.Errorf("det = %d, want -1", got)
	}
	c, _ := FromRows([][]int64{{5}})
	if got := Det(c).Int64(); got != 5 {
		t.Errorf("det = %d, want 5", got)
	}
}

func TestCharPolyIdentity(t *testing.T) {
	n := 6
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		a.SetInt64(i, i, 1)
	}
	p := CharPoly(a)
	// (λ-1)^6.
	want := poly.FromRoots(mp.NewInt(1), mp.NewInt(1), mp.NewInt(1), mp.NewInt(1), mp.NewInt(1), mp.NewInt(1))
	if !p.Equal(want) {
		t.Fatalf("charpoly(I) = %s", p)
	}
}

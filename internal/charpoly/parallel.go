package charpoly

import (
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sched"
)

// CharPolyParallel is CharPoly with the Faddeev–LeVerrier matrix
// products row-parallelized on the pool. The recurrence itself is
// sequential in k (each step needs the previous trace), but each step's
// n×n product is n independent row computations — the same
// dynamic-task-pool pattern as the solver's precomputation stage.
// Results are identical to CharPoly.
func CharPolyParallel(a *Matrix, pool *sched.Pool) *poly.Poly {
	return CharPolyParallelProfile(a, pool, mp.Schoolbook)
}

// CharPolyParallelProfile is CharPolyParallel under the given arithmetic
// profile: the entry products of each row task dispatch to the profile's
// multiplication kernel. The profile rides in each task's closure — no
// package state — so concurrent calls with different profiles are safe.
func CharPolyParallelProfile(a *Matrix, pool *sched.Pool, pr mp.Profile) *poly.Poly {
	if pool == nil {
		return CharPolyProfile(a, pr)
	}
	n := a.n
	c := make([]*mp.Int, n+1)
	c[n] = mp.NewInt(1)
	var m *Matrix
	for k := 1; k <= n; k++ {
		if k == 1 {
			m = a
		} else {
			m.addScaledIdentity(c[n-k+1])
			m = mulParallel(a, m, pool, pr)
		}
		tr := m.trace()
		ck := new(mp.Int).Neg(tr)
		c[n-k] = ck.DivExact(ck, mp.NewInt(int64(k)))
		if k == 1 {
			m = cloneMatrix(a)
		}
	}
	return poly.New(c...)
}

// mulParallel computes x·y with one task per result row.
func mulParallel(x, y *Matrix, pool *sched.Pool, pr mp.Profile) *Matrix {
	n := x.n
	z := NewMatrix(n)
	pool.ParallelForTagged("charpoly", n, 1, func(i int) {
		var t mp.Int
		for j := 0; j < n; j++ {
			acc := z.a[i*n+j]
			for k := 0; k < n; k++ {
				xe, ye := x.a[i*n+k], y.a[k*n+j]
				if xe.IsZero() || ye.IsZero() {
					continue
				}
				t.MulProfile(pr, xe, ye)
				acc.Add(acc, &t)
			}
		}
	})
	return z
}

package charpoly

import (
	"math/rand"
	"testing"

	"realroots/internal/sched"
)

func TestCharPolyParallelMatchesSequential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(12)
		a := RandomSymmetric01(r, n)
		seq := CharPoly(a)
		par := CharPolyParallel(a, pool)
		if !seq.Equal(par) {
			t.Fatalf("n=%d: parallel charpoly differs", n)
		}
	}
}

func TestCharPolyParallelNilPool(t *testing.T) {
	a, _ := FromRows([][]int64{{2, 1}, {1, 2}})
	if !CharPolyParallel(a, nil).Equal(CharPoly(a)) {
		t.Fatal("nil pool fallback differs")
	}
}

func TestCharPolyParallelDoesNotMutate(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	a, _ := FromRows([][]int64{{1, 2, 0}, {2, 0, 1}, {0, 1, 3}})
	CharPolyParallel(a, pool)
	if a.At(0, 0).Int64() != 1 || a.At(2, 2).Int64() != 3 || a.At(1, 0).Int64() != 2 {
		t.Fatal("input mutated")
	}
}

// Package charpoly computes exact characteristic polynomials of integer
// matrices. The paper's evaluation inputs are "the characteristic
// equations of randomly generated symmetric matrices over the integers"
// (§5) — symmetric real matrices have only real eigenvalues, so their
// characteristic polynomials are exactly the real-rooted inputs the
// algorithm requires.
package charpoly

import (
	"fmt"
	"math/rand"

	"realroots/internal/mp"
	"realroots/internal/poly"
)

// A Matrix is a dense n×n integer matrix.
type Matrix struct {
	n int
	a []*mp.Int // row-major
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("charpoly: invalid dimension %d", n))
	}
	a := make([]*mp.Int, n*n)
	for i := range a {
		a[i] = new(mp.Int)
	}
	return &Matrix{n: n, a: a}
}

// FromRows builds a matrix from int64 rows; all rows must have equal
// length n ≥ 1.
func FromRows(rows [][]int64) (*Matrix, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("charpoly: empty matrix")
	}
	m := NewMatrix(n)
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("charpoly: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			m.a[i*n+j].SetInt64(v)
		}
	}
	return m, nil
}

// Dim returns the dimension n.
func (m *Matrix) Dim() int { return m.n }

// At returns entry (i, j). The returned value must not be mutated.
func (m *Matrix) At(i, j int) *mp.Int { return m.a[i*m.n+j] }

// Set sets entry (i, j) to v (copied).
func (m *Matrix) Set(i, j int, v *mp.Int) { m.a[i*m.n+j].Set(v) }

// SetInt64 sets entry (i, j) to v.
func (m *Matrix) SetInt64(i, j int, v int64) { m.a[i*m.n+j].SetInt64(v) }

// IsSymmetric reports whether m equals its transpose.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j).Cmp(m.At(j, i)) != 0 {
				return false
			}
		}
	}
	return true
}

// RandomSymmetric01 returns a random symmetric n×n 0-1 matrix drawn from
// r — the paper's input distribution (§5: "the matrices generated were
// random 0-1 matrices").
func RandomSymmetric01(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := int64(r.Intn(2))
			m.SetInt64(i, j, v)
			m.SetInt64(j, i, v)
		}
	}
	return m
}

// RandomSymmetric returns a random symmetric matrix with entries uniform
// in [-bound, bound].
func RandomSymmetric(r *rand.Rand, n int, bound int64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Int63n(2*bound+1) - bound
			m.SetInt64(i, j, v)
			m.SetInt64(j, i, v)
		}
	}
	return m
}

// mul returns the matrix product x·y under the given arithmetic profile.
func mul(x, y *Matrix, pr mp.Profile) *Matrix {
	n := x.n
	z := NewMatrix(n)
	var t mp.Int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := z.a[i*n+j]
			for k := 0; k < n; k++ {
				xe, ye := x.a[i*n+k], y.a[k*n+j]
				if xe.IsZero() || ye.IsZero() {
					continue
				}
				t.MulProfile(pr, xe, ye)
				acc.Add(acc, &t)
			}
		}
	}
	return z
}

// trace returns tr(m).
func (m *Matrix) trace() *mp.Int {
	t := new(mp.Int)
	for i := 0; i < m.n; i++ {
		t.Add(t, m.At(i, i))
	}
	return t
}

// addScaledIdentity adds c·I to m in place.
func (m *Matrix) addScaledIdentity(c *mp.Int) {
	for i := 0; i < m.n; i++ {
		d := m.a[i*m.n+i]
		d.Add(d, c)
	}
}

// CharPoly returns the characteristic polynomial det(λI - A) of A as a
// monic integer polynomial in λ, computed by the Faddeev–LeVerrier
// recurrence. All divisions in the recurrence are exact over ℤ.
func CharPoly(a *Matrix) *poly.Poly { return CharPolyProfile(a, mp.Schoolbook) }

// CharPolyProfile is CharPoly with the matrix products performed under
// the given arithmetic profile. The result is identical for every
// profile; only the multiplication algorithm differs.
func CharPolyProfile(a *Matrix, pr mp.Profile) *poly.Poly {
	n := a.n
	// c[n] = 1; for k = 1..n:
	//   M_k = A·(M_{k-1} + c_{n-k+1}·I)   (with M_0 such that M_1 = A)
	//   c_{n-k} = -tr(M_k)/k.
	c := make([]*mp.Int, n+1)
	c[n] = mp.NewInt(1)
	var m *Matrix
	for k := 1; k <= n; k++ {
		if k == 1 {
			m = a
		} else {
			m.addScaledIdentity(c[n-k+1])
			m = mul(a, m, pr)
		}
		tr := m.trace()
		ck := new(mp.Int).Neg(tr)
		c[n-k] = ck.DivExact(ck, mp.NewInt(int64(k)))
		if k == 1 {
			// Copy A so the caller's matrix is never mutated.
			m = cloneMatrix(a)
		}
	}
	return poly.New(c...)
}

func cloneMatrix(a *Matrix) *Matrix {
	z := NewMatrix(a.n)
	for i, v := range a.a {
		z.a[i].Set(v)
	}
	return z
}

// Det returns det(A) = (-1)^n · charpoly(0).
func Det(a *Matrix) *mp.Int {
	p := CharPoly(a)
	d := new(mp.Int).Set(p.Coeff(0))
	if a.n%2 != 0 {
		d.Neg(d)
	}
	return d
}

package remseq

import (
	"math/rand"
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// withMults builds ∏(x - r_k)^{m_k} with the requested multiplicities.
func withMults(roots []int64, mults []int) *poly.Poly {
	p := poly.FromInt64s(1)
	for i, r := range roots {
		for j := 0; j < mults[i]; j++ {
			p = p.MulLinear(mp.NewInt(r))
		}
	}
	return p
}

func TestExtendedDetectsNStar(t *testing.T) {
	cases := []struct {
		roots []int64
		mults []int
	}{
		{[]int64{1, -4, 9}, []int{3, 2, 1}},
		{[]int64{0, 5}, []int{2, 2}},
		{[]int64{7}, []int{4}},
		{[]int64{-2, 3, 11, 20}, []int{1, 1, 2, 1}},
	}
	for _, c := range cases {
		p := withMults(c.roots, c.mults)
		e, err := ComputeExtended(p, metrics.Ctx{})
		if err != nil {
			t.Fatalf("%v^%v: %v", c.roots, c.mults, err)
		}
		if e.NStar != len(c.roots) {
			t.Errorf("%v^%v: NStar = %d, want %d", c.roots, c.mults, e.NStar, len(c.roots))
		}
		// The terminating gcd must vanish exactly at the repeated roots.
		for i, r := range c.roots {
			want := c.mults[i] > 1
			got := e.Gcd.Eval(mp.NewInt(r)).Sign() == 0
			if got != want {
				t.Errorf("%v^%v: gcd(%d) zero=%v, want %v", c.roots, c.mults, r, got, want)
			}
		}
	}
}

func TestExtendedRejectsSquarefree(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(2), mp.NewInt(3))
	if _, err := ComputeExtended(p, metrics.Ctx{}); err == nil {
		t.Fatal("squarefree input accepted")
	}
}

func TestExtendedTailShape(t *testing.T) {
	p := withMults([]int64{2, -3}, []int{2, 3}) // degree 5, n* = 2
	e, err := ComputeExtended(p, metrics.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	if e.N != 5 || e.NStar != 2 {
		t.Fatalf("N=%d NStar=%d", e.N, e.NStar)
	}
	// Eqs. 10-12.
	for i := e.NStar; i < e.N; i++ {
		if !e.F[i].Equal(poly.FromInt64s(1)) {
			t.Errorf("F_%d = %s, want 1", i, e.F[i])
		}
		if !e.Q[i].Equal(poly.FromInt64s(1)) {
			t.Errorf("Q_%d = %s, want 1", i, e.Q[i])
		}
	}
	if !e.F[e.N].IsZero() {
		t.Errorf("F_n = %s, want 0", e.F[e.N])
	}
}

// TestTheorem2Degrees verifies the degree claim of Theorem 2 on random
// repeated-root inputs: deg P_{i,j} = max{0, min(n*-i+1, j-i+1)} for
// every 1 ≤ i ≤ j ≤ n-1.
func TestTheorem2Degrees(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		k := 1 + r.Intn(3)
		seen := map[int64]bool{}
		var roots []int64
		var mults []int
		deg := 0
		for len(roots) < k || deg < 3 {
			v := int64(r.Intn(21) - 10)
			if seen[v] {
				continue
			}
			seen[v] = true
			m := 1 + r.Intn(3)
			roots = append(roots, v)
			mults = append(mults, m)
			deg += m
		}
		hasRepeat := false
		for _, m := range mults {
			if m > 1 {
				hasRepeat = true
			}
		}
		if !hasRepeat {
			mults[0]++
			deg++
		}
		p := withMults(roots, mults)
		e, err := ComputeExtended(p, metrics.Ctx{})
		if err != nil {
			t.Fatalf("trial %d (%v^%v): %v", trial, roots, mults, err)
		}
		for i := 1; i <= e.N-1; i++ {
			for j := i; j <= e.N-1; j++ {
				got := e.P(metrics.Ctx{}, i, j).Degree()
				want := e.Theorem2Degree(i, j)
				if want == 0 {
					// Degenerate indices: constant or (beyond n*+1) the
					// zero polynomial.
					if got > 0 {
						t.Fatalf("trial %d: deg P_{%d,%d} = %d, want ≤ 0", trial, i, j, got)
					}
					continue
				}
				if got != want {
					t.Fatalf("trial %d (%v^%v, n*=%d): deg P_{%d,%d} = %d, want %d",
						trial, roots, mults, e.NStar, i, j, got, want)
				}
			}
		}
		// The rightmost spine realizes Theorem 2's n*-i+1 degrees.
		for i := 1; i <= e.NStar; i++ {
			if got := e.SpineP(i).Degree(); got != e.NStar-i+1 {
				t.Fatalf("trial %d: deg SpineP(%d) = %d, want %d", trial, i, got, e.NStar-i+1)
			}
		}
	}
}

// TestTheorem2DistinctRealRoots verifies that every non-constant
// P_{i,j} over the extended sequence has the full count of distinct
// real roots (checked by Sturm on its squarefree-ness and count).
func TestTheorem2DistinctRealRoots(t *testing.T) {
	p := withMults([]int64{1, -4, 9, 15}, []int{2, 1, 3, 1}) // degree 7, n* = 4
	e, err := ComputeExtended(p, metrics.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= e.N-1; i++ {
		for j := i; j <= e.N-1; j++ {
			pij := e.P(metrics.Ctx{}, i, j)
			if pij.Degree() < 1 {
				continue
			}
			if !pij.IsSquarefree() {
				t.Fatalf("P_{%d,%d} = %s has repeated roots", i, j, pij)
			}
			s, err := Compute(pij, Options{})
			if err != nil {
				t.Fatalf("P_{%d,%d} = %s: %v", i, j, pij, err)
			}
			if got := s.RealRootCount(); got != pij.Degree() {
				t.Fatalf("P_{%d,%d} has %d real roots for degree %d", i, j, got, pij.Degree())
			}
		}
	}
}

// TestTheorem2RootPolynomial verifies the paper's §2.3 conclusion: the
// top non-degenerate tree polynomial over the extended sequence has
// degree n* and vanishes exactly at the distinct roots of p.
func TestTheorem2RootPolynomial(t *testing.T) {
	cases := []struct {
		roots []int64
		mults []int
	}{
		{[]int64{1, -4, 9}, []int{3, 2, 1}},
		{[]int64{0, 5, -7}, []int{2, 2, 2}},
		{[]int64{3, 8}, []int{1, 3}},
	}
	for _, c := range cases {
		p := withMults(c.roots, c.mults)
		e, err := ComputeExtended(p, metrics.Ctx{})
		if err != nil {
			t.Fatal(err)
		}
		top := e.RootPoly()
		if top.Degree() != e.NStar {
			t.Fatalf("%v^%v: deg RootPoly = %d, want n* = %d", c.roots, c.mults, top.Degree(), e.NStar)
		}
		for _, r := range c.roots {
			if top.Eval(mp.NewInt(r)).Sign() != 0 {
				t.Fatalf("%v^%v: RootPoly(%d) != 0", c.roots, c.mults, r)
			}
		}
		if !top.IsSquarefree() {
			t.Fatalf("%v^%v: RootPoly not squarefree", c.roots, c.mults)
		}
	}
}

package remseq

import (
	"fmt"

	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// The §2.3 extension. When p has repeated roots the plain remainder
// sequence terminates early — F_{n*}(x) divides F_{n*-1}(x) and
// F_{n*+1}(x) = 0, where n* is the number of distinct roots and F_{n*}
// is (a multiple of) gcd(F_0, F_0'). The paper extends the sequences by
//
//	F_i(x) = 1   for n* ≤ i < n       (Eq. 10)
//	F_n(x) = 0                        (Eq. 11)
//	Q_i(x) = 1   for n* ≤ i < n       (Eq. 12)
//
// and defines the S and T matrices over the extended sequences.
// Theorem 2 then asserts that P_{i,j} = T_{i,j}(2,2) has degree
// max{0, min(n*-i+1, j-i+1)} and distinct real roots, with the
// interleaving property holding wherever the child degree permits.
//
// The production path in this repository reduces to the squarefree part
// instead (an equivalent preprocessing; see DESIGN.md), so this file
// exists to reproduce §2.3 faithfully: ComputeExtended builds the
// extended sequences, and the tests verify Theorem 2's degree and
// interleaving claims on them.

// Extended is the §2.3 extended remainder sequence of a polynomial with
// repeated roots.
type Extended struct {
	N     int // degree of F_0
	NStar int // number of distinct roots
	F     []*poly.Poly
	Q     []*poly.Poly
	csq   []*mp.Int
	// Gcd is the non-trivial gcd(F_0, F_0') that the plain sequence
	// terminated with (before being replaced by 1 in F).
	Gcd *poly.Poly
}

// ComputeExtended returns the extended remainder sequence of p, which
// must have repeated roots, all real, and degree ≥ 2. (For squarefree
// inputs use Compute; ComputeExtended reports an error.)
func ComputeExtended(p *poly.Poly, ctx metrics.Ctx) (*Extended, error) {
	n := p.Degree()
	if n < 2 {
		return nil, fmt.Errorf("remseq: degree %d polynomial cannot have repeated roots", n)
	}
	ctx = ctx.In(metrics.PhaseRemainder)

	f := make([][]*mp.Int, n+1)
	f[0] = coeffs(p, n)
	f[1] = coeffs(p.Derivative(), n-1)

	e := &Extended{N: n, Q: make([]*poly.Poly, n)}
	one := mp.NewInt(1)

	nStar := -1
	for i := 1; i < n; i++ {
		ci := f[i][n-i]
		ci1 := f[i-1][n-i+1]
		if ci.IsZero() {
			return nil, ErrNotAllReal // abnormal degree drop mid-sequence
		}
		q1 := ctx.Mul(ci1, ci)
		var fiLow *mp.Int
		if n-i-1 >= 0 {
			fiLow = f[i][n-i-1]
		} else {
			fiLow = new(mp.Int)
		}
		q0 := ctx.Sub(ctx.Mul(ci, f[i-1][n-i]), ctx.Mul(fiLow, ci1))
		e.Q[i] = poly.New(q0, q1)

		cisq := ctx.Sqr(ci)
		divisor := one
		if i >= 2 {
			divisor = ctx.Sqr(ci1)
		}
		next := make([]*mp.Int, n-i)
		for j := 0; j < n-i; j++ {
			t := ctx.Mul(f[i][j], q0)
			if j >= 1 {
				t = ctx.Add(t, ctx.Mul(f[i][j-1], q1))
			}
			t = ctx.Sub(t, ctx.Mul(cisq, f[i-1][j]))
			if divisor.IsOne() {
				next[j] = t
			} else {
				next[j] = ctx.DivExact(t, divisor)
			}
		}
		f[i+1] = next

		allZero := true
		for _, v := range next {
			if !v.IsZero() {
				allZero = false
				break
			}
		}
		if allZero {
			// F_{i+1} = 0: F_i is the gcd; the paper's n* is i.
			nStar = i
			break
		}
		if next[n-i-1].IsZero() {
			return nil, ErrNotAllReal
		}
	}
	if nStar < 0 {
		return nil, fmt.Errorf("remseq: polynomial is squarefree; use Compute")
	}

	e.NStar = nStar
	e.Gcd = poly.New(f[nStar]...)
	e.F = make([]*poly.Poly, n+1)
	e.csq = make([]*mp.Int, n+1)
	for i := 0; i < nStar; i++ {
		e.F[i] = poly.New(f[i]...)
	}
	// Eqs. 10-12: replace the tail.
	for i := nStar; i < n; i++ {
		e.F[i] = poly.FromInt64s(1)
		if i >= 1 {
			e.Q[i] = poly.FromInt64s(1)
		}
	}
	e.F[n] = poly.Zero()
	for i := 0; i <= n; i++ {
		if i == 0 {
			e.csq[0] = mp.NewInt(1) // Appendix A's c_0 = ±1 convention
			continue
		}
		lead := e.F[i].Lead()
		e.csq[i] = new(mp.Int).Sqr(lead) // = 1 for the extended tail, 0 for F_n
	}
	return e, nil
}

// Csq returns c_i² over the extended sequence (c_0² = 1 by convention).
func (e *Extended) Csq(i int) *mp.Int { return e.csq[i] }

// SHat returns Ŝ_k = [[0, c_{k-1}²], [-c_k², Q_k]] over the extended
// sequence, for 1 ≤ k ≤ n-1.
func (e *Extended) SHat(k int) [2][2]*poly.Poly {
	return [2][2]*poly.Poly{
		{poly.Zero(), poly.Constant(e.Csq(k - 1))},
		{poly.Constant(new(mp.Int).Neg(e.Csq(k))), e.Q[k].Clone()},
	}
}

// P computes a positive scalar multiple of P_{i,j} = T_{i,j}(2,2) over
// the extended sequence, as the (2,2) entry of Ŝ_j ⋯ Ŝ_i
// (1 ≤ i ≤ j ≤ n-1). The plain sequence's exact division by
// ∏_{m=i}^{j-1} c_m² relies on the subresultant integrality that the
// §2.3 tail replacement breaks, so the unscaled product — which differs
// from the paper's P_{i,j} only by the positive factor ∏ c_m² and
// therefore has identical degree and roots — is returned instead.
// Theorem 2's degree, realness, and interleaving claims are all
// invariant under positive scaling.
func (e *Extended) P(ctx metrics.Ctx, i, j int) *poly.Poly {
	if i < 1 || j > e.N-1 || i > j {
		panic(fmt.Sprintf("remseq: extended P_{%d,%d} out of range", i, j))
	}
	ctx = ctx.In(metrics.PhaseTree)
	m := e.SHat(i)
	for k := i + 1; k <= j; k++ {
		m = mul2(ctx, e.SHat(k), m)
	}
	// Remove the integer content to keep coefficient sizes in check (the
	// scalar is irrelevant to every property the extension is used for).
	return m[1][1].PrimitivePart()
}

func mul2(ctx metrics.Ctx, a, b [2][2]*poly.Poly) [2][2]*poly.Poly {
	var z [2][2]*poly.Poly
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			z[r][c] = a[r][0].MulCtx(ctx, b[0][c]).AddCtx(ctx, a[r][1].MulCtx(ctx, b[1][c]))
		}
	}
	return z
}

// Theorem2Degree returns the degree of the extended P_{i,j} for
// j ≤ n-1: min(n*-i, j-i+1), clamped at 0 (degenerate indices give
// constants or the zero polynomial). The paper's Theorem 2 prints the
// formula as "min{0, n*-i+1, j-i+1}", which is internally inconsistent
// (it would make every degree 0); the law verified empirically and
// asserted by this package's tests uses n*-i for the inner nodes, with
// the n*-i+1 term realized by the rightmost spine (SpineP below).
func (e *Extended) Theorem2Degree(i, j int) int {
	d := e.NStar - i
	if w := j - i + 1; w < d {
		d = w
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SpineP returns the extended rightmost-spine polynomial for node
// [i, n]: F_{i-1} with the repeated-root content divided out
// (F_{i-1}/gcd(F_0, F_1), exact since the gcd divides every F_i). It
// has degree n*-i+1 — Theorem 2's other degree term — and carries the
// same distinct roots as F_{i-1}; in particular SpineP(1) is the
// squarefree polynomial with exactly the distinct roots of p.
func (e *Extended) SpineP(i int) *poly.Poly {
	if i < 1 || i > e.NStar {
		panic(fmt.Sprintf("remseq: extended spine index %d out of range", i))
	}
	g := e.Gcd.PrimitivePart()
	q, r := poly.DivMod(e.F[i-1].PrimitivePart(), g)
	if !r.IsZero() {
		panic("remseq: gcd does not divide F_{i-1}")
	}
	return q.PrimitivePart()
}

// RootPoly returns SpineP(1): the degree-n* polynomial whose roots are
// exactly the distinct roots of p — the §2.3 tree-root polynomial.
func (e *Extended) RootPoly() *poly.Poly { return e.SpineP(1) }

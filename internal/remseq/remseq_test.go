package remseq

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/charpoly"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sched"
)

func noCtx() metrics.Ctx { return metrics.Ctx{} }

func mustCompute(t *testing.T, p *poly.Poly) *Sequence {
	t.Helper()
	s, err := Compute(p, Options{})
	if err != nil {
		t.Fatalf("Compute(%s): %v", p, err)
	}
	return s
}

// distinctIntRoots returns k distinct integers in [-50, 50].
func distinctIntRoots(r *rand.Rand, k int) []*mp.Int {
	seen := map[int64]bool{}
	var roots []*mp.Int
	for len(roots) < k {
		v := int64(r.Intn(101) - 50)
		if !seen[v] {
			seen[v] = true
			roots = append(roots, mp.NewInt(v))
		}
	}
	return roots
}

func TestDegreesAndLinearQuotients(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		p := poly.FromRoots(distinctIntRoots(r, n)...)
		s := mustCompute(t, p)
		if len(s.F) != n+1 {
			t.Fatalf("len(F) = %d", len(s.F))
		}
		for i, fi := range s.F {
			if fi.Degree() != n-i {
				t.Fatalf("deg F_%d = %d, want %d (p=%s)", i, fi.Degree(), n-i, p)
			}
		}
		for i := 1; i < n; i++ {
			if s.Q[i].Degree() != 1 {
				t.Fatalf("deg Q_%d = %d, want 1", i, s.Q[i].Degree())
			}
			if s.Q[i].Lead().Sign() <= 0 {
				// q_{i,1} = c_{i-1}c_i; consecutive leading coefficients of a
				// real-rooted chain have the same sign (Theorem 1(i)).
				t.Fatalf("Q_%d has non-positive leading coefficient %s", i, s.Q[i].Lead())
			}
		}
	}
}

func TestRecurrenceIdentity(t *testing.T) {
	// F_{i+1}·c_{i-1}² == Q_i·F_i - c_i²·F_{i-1} as polynomials.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(7)
		p := poly.FromRoots(distinctIntRoots(r, n)...)
		s := mustCompute(t, p)
		for i := 1; i < n; i++ {
			rhs := s.Q[i].Mul(s.F[i]).Sub(s.F[i-1].ScaleInt(new(mp.Int).Sqr(s.C[i])))
			lhs := s.F[i+1].ScaleInt(s.Csq(i - 1))
			if !lhs.Equal(rhs) {
				t.Fatalf("recurrence fails at i=%d for %s", i, p)
			}
		}
	}
}

func TestInterleavingOfF(t *testing.T) {
	// Between consecutive integer roots of F_{i-1}... instead verify the
	// classical consequence: sign changes of F_i at consecutive roots of
	// F_{i-1}. With integer roots for F_0 only, check i=1 directly: F_1
	// must change sign between consecutive roots of F_0 — equivalently
	// F_1 has a root there. We check sgn(F_1(r_j))·sgn(F_1(r_{j+1})) < 0.
	roots := []*mp.Int{mp.NewInt(-9), mp.NewInt(-2), mp.NewInt(0), mp.NewInt(3), mp.NewInt(11)}
	p := poly.FromRoots(roots...)
	s := mustCompute(t, p)
	for j := 0; j+1 < len(roots); j++ {
		a := s.F[1].Eval(roots[j]).Sign()
		b := s.F[1].Eval(roots[j+1]).Sign()
		if a*b >= 0 {
			t.Fatalf("F_1 does not change sign on [%s, %s]", roots[j], roots[j+1])
		}
	}
}

func TestCsqConvention(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(2), mp.NewInt(3)).ScaleInt(mp.NewInt(-7))
	s := mustCompute(t, p)
	if !s.Csq(0).IsOne() {
		t.Errorf("Csq(0) = %s, want 1 (Appendix A convention)", s.Csq(0))
	}
	want := new(mp.Int).Sqr(s.C[1])
	if s.Csq(1).Cmp(want) != 0 {
		t.Errorf("Csq(1) = %s, want %s", s.Csq(1), want)
	}
}

func TestRepeatedRootsDetected(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(2), mp.NewInt(2), mp.NewInt(5), mp.NewInt(-1))
	_, err := Compute(p, Options{})
	if !errors.Is(err, ErrNotSquarefree) {
		t.Fatalf("err = %v, want ErrNotSquarefree", err)
	}
}

func TestComplexRootsDetected(t *testing.T) {
	// (x²+1)(x-3)(x+4)(x²+x+9): squarefree but not all real. Either the
	// structural checks or Validate must reject it.
	p := poly.FromInt64s(1, 0, 1).Mul(poly.FromRoots(mp.NewInt(3), mp.NewInt(-4))).Mul(poly.FromInt64s(9, 1, 1))
	s, err := Compute(p, Options{})
	if err == nil {
		err = s.Validate()
	}
	if !errors.Is(err, ErrNotAllReal) {
		t.Fatalf("err = %v, want ErrNotAllReal", err)
	}
}

func TestPureComplexNormalSequenceCaughtByValidate(t *testing.T) {
	// x²+1 yields a structurally normal sequence; Validate must catch it.
	p := poly.FromInt64s(1, 0, 1)
	s, err := Compute(p, Options{})
	if err == nil {
		err = s.Validate()
	}
	if !errors.Is(err, ErrNotAllReal) {
		t.Fatalf("err = %v, want ErrNotAllReal", err)
	}
}

func TestDegreeZeroRejected(t *testing.T) {
	if _, err := Compute(poly.FromInt64s(5), Options{}); err == nil {
		t.Fatal("constant accepted")
	}
	if _, err := Compute(poly.Zero(), Options{}); err == nil {
		t.Fatal("zero polynomial accepted")
	}
}

func TestDegreeOne(t *testing.T) {
	p := poly.FromInt64s(-6, 2) // 2x - 6
	s := mustCompute(t, p)
	if s.RealRootCount() != 1 {
		t.Fatalf("root count = %d", s.RealRootCount())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSturmRealRootCount(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(8)
		p := poly.FromRoots(distinctIntRoots(r, n)...)
		s := mustCompute(t, p)
		if got := s.RealRootCount(); got != n {
			t.Fatalf("RealRootCount = %d, want %d (p=%s)", got, n, p)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCountRootsBelow(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(-5), mp.NewInt(0), mp.NewInt(4))
	s := mustCompute(t, p)
	cases := []struct {
		num   int64
		scale uint
		want  int
	}{
		{-6, 0, 0}, {-9, 1, 1} /* -4.5 */, {1, 1, 2} /* 0.5 */, {9, 1, 3} /* 4.5 */, {100, 0, 3},
	}
	for _, c := range cases {
		if got := s.CountRootsBelow(noCtx(), mp.NewInt(c.num), c.scale); got != c.want {
			t.Errorf("CountRootsBelow(%d/2^%d) = %d, want %d", c.num, c.scale, got, c.want)
		}
	}
}

func TestCharPolyInputs(t *testing.T) {
	// The paper's own workload: characteristic polynomials of random
	// symmetric 0-1 matrices are real-rooted; most are squarefree.
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(8)
		p := charpoly.CharPoly(charpoly.RandomSymmetric01(r, n))
		s, err := Compute(p, Options{})
		if errors.Is(err, ErrNotSquarefree) {
			continue // rare but legitimate
		}
		if err != nil {
			t.Fatalf("charpoly n=%d: %v", n, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("charpoly n=%d: %v", n, err)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	pool := sched.NewPool(4)
	defer pool.Close()
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(10)
		p := poly.FromRoots(distinctIntRoots(r, n)...)
		seq := mustCompute(t, p)
		par, err := Compute(p, Options{Pool: pool})
		if err != nil {
			t.Fatalf("parallel Compute: %v", err)
		}
		for i := range seq.F {
			if !seq.F[i].Equal(par.F[i]) {
				t.Fatalf("F_%d differs between sequential and parallel", i)
			}
		}
		for i := 1; i < len(seq.Q); i++ {
			if !seq.Q[i].Equal(par.Q[i]) {
				t.Fatalf("Q_%d differs between sequential and parallel", i)
			}
		}
	}
}

func TestQuickSturmCountsWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		roots := distinctIntRoots(r, n)
		p := poly.FromRoots(roots...)
		s, err := Compute(p, Options{})
		if err != nil {
			return false
		}
		// Count roots in (-100, 27.5): compare Sturm against direct count.
		lo, hi := mp.NewInt(-100), mp.NewInt(55) // 55/2 = 27.5
		want := 0
		for _, root := range roots {
			v := root.Int64()
			if v > -100 && v < 27 || v == 27 {
				want++
			}
		}
		got := s.Variations(noCtx(), lo, 0) - s.Variations(noCtx(), hi, 1)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

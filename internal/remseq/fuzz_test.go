package remseq

import (
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// FuzzRemseqInterleaving feeds Compute polynomials with known distinct
// integer roots and checks the Theorem 1 root-interleaving invariant:
// every suffix F_i, F_{i+1}, …, F_n of the remainder sequence is itself
// a Sturm chain for F_i, so its sign-variation difference across the
// whole line must equal deg F_i = n-i exactly. A single wrong
// coefficient anywhere in the recurrence breaks the count for some
// suffix.
func FuzzRemseqInterleaving(f *testing.F) {
	f.Add([]byte{1, 255})         // roots 1, -1
	f.Add([]byte{3, 253, 10})     // roots 3, -3, 10
	f.Add([]byte{0, 5, 251, 100}) // roots 0, 5, -5, 100
	f.Add([]byte{7, 7, 7})        // collapses to the single root 7
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, rootBytes []byte) {
		if len(rootBytes) > 10 {
			return
		}
		// Distinct int8 roots → squarefree, all-real input by construction.
		seen := map[int64]bool{}
		var roots []*mp.Int
		for _, b := range rootBytes {
			r := int64(int8(b))
			if !seen[r] {
				seen[r] = true
				roots = append(roots, mp.NewInt(r))
			}
		}
		if len(roots) < 1 {
			return
		}
		p := poly.FromRoots(roots...)
		n := p.Degree()

		s, err := Compute(p, Options{})
		if err != nil {
			t.Fatalf("Compute rejected a squarefree all-real input (roots %v): %v", roots, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate (roots %v): %v", roots, err)
		}
		if got := s.RealRootCount(); got != n {
			t.Fatalf("RealRootCount = %d, want %d (roots %v)", got, n, roots)
		}

		// Theorem 1 via suffix chains: V_i(-∞) - V_i(+∞) = n - i, where
		// V_i counts the sign variations of F_i, …, F_n. The signs at
		// ±∞ come from leading coefficients alone, independent of the
		// variation machinery inside the package.
		signs := func(negInf bool) []int {
			out := make([]int, n+1)
			for j := 0; j <= n; j++ {
				if negInf {
					out[j] = s.F[j].SignAtNegInf()
				} else {
					out[j] = s.F[j].SignAtPosInf()
				}
			}
			return out
		}
		variations := func(sg []int) int {
			v := 0
			for j := 1; j < len(sg); j++ {
				if sg[j]*sg[j-1] < 0 {
					v++
				}
			}
			return v
		}
		neg, pos := signs(true), signs(false)
		for i := 0; i <= n; i++ {
			got := variations(neg[i:]) - variations(pos[i:])
			if got != n-i {
				t.Fatalf("suffix %d: V(-∞)-V(+∞) = %d, want %d (roots %v)", i, got, n-i, roots)
			}
		}

		// Cross-check the package's own variation counting at ±∞ and at
		// a point beyond every root (all int8 roots lie in [-128, 127]).
		if got := s.VariationsAtNegInf() - s.VariationsAtPosInf(); got != n {
			t.Fatalf("package variations across ℝ = %d, want %d (roots %v)", got, n, roots)
		}
		if got := s.CountRootsBelow(metrics.Ctx{}, mp.NewInt(200), 0); got != n {
			t.Fatalf("CountRootsBelow(200) = %d, want %d (roots %v)", got, n, roots)
		}
		if got := s.CountRootsBelow(metrics.Ctx{}, mp.NewInt(-200), 0); got != 0 {
			t.Fatalf("CountRootsBelow(-200) = %d, want 0 (roots %v)", got, roots)
		}
	})
}

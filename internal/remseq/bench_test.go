package remseq

import (
	"fmt"
	"testing"

	"realroots/internal/sched"
	"realroots/internal/workload"
)

func BenchmarkCompute(b *testing.B) {
	for _, n := range []int{20, 40, 70} {
		p := workload.CharPoly01(1, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compute(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	pool := sched.NewPool(4)
	defer pool.Close()
	p := workload.CharPoly01(1, 40)
	for i := 0; i < b.N; i++ {
		if _, err := Compute(p, Options{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariations(b *testing.B) {
	p := workload.CharPoly01(1, 40)
	s, err := Compute(p, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.RealRootCount()
	}
}

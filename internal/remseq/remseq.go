// Package remseq computes the standard remainder sequence
// F_0, F_1, …, F_n and the quotient sequence Q_1, …, Q_{n-1} of a
// squarefree real-rooted polynomial (paper §2.1), using the explicit
// per-coefficient recurrences of §3.1:
//
//	q_{i,1} = c_{i-1}·c_i
//	q_{i,0} = f_{i,n-i}·f_{i-1,n-i} - f_{i,n-i-1}·f_{i-1,n-i+1}
//	f_{i+1,j} = (f_{i,j}·q_{i,0} + f_{i,j-1}·q_{i,1} - c_i²·f_{i-1,j}) / c_{i-1}²
//
// (with the i = 1 step dividing by 1, matching F_2 = Q_1F_1 - c_1²F_0).
// All divisions are exact over ℤ (Collins 1967). Each iteration's
// coefficient computations are independent, which is exactly the
// parallelism the paper exploits in its precomputation phase; Compute
// optionally runs them on a sched.Pool, and the sequential path is the
// paper's run-time option of executing this stage on one processor.
//
// The sequence is also a Sturm chain (each F_{i+1} is a positive
// multiple of the negated remainder of the two previous terms), which
// this package exposes for root counting and input validation.
package remseq

import (
	"errors"
	"fmt"

	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sched"
)

// ErrNotSquarefree reports that the input has repeated roots: the
// remainder sequence terminated early with a non-trivial GCD. Callers
// handle it by reducing to the squarefree part (the preprocessing
// counterpart of the paper's §2.3 extension) and recomputing.
var ErrNotSquarefree = errors.New("remseq: polynomial has repeated roots")

// ErrNotAllReal reports that the remainder sequence is abnormal for a
// squarefree input, which cannot happen when all roots are real
// (Theorem 1): the input violates the algorithm's precondition.
var ErrNotAllReal = errors.New("remseq: polynomial does not have all real roots")

// A Sequence holds the remainder and quotient sequences of F_0.
type Sequence struct {
	N   int          // degree of F_0
	F   []*poly.Poly // F[0..N]; deg F[i] = N-i; F[N] is a non-zero constant
	Q   []*poly.Poly // Q[1..N-1] linear; Q[0] is nil
	C   []*mp.Int    // C[i] = lc(F[i]); the actual leading coefficients
	csq []*mp.Int    // csq[i] = c_i², except csq[0] = 1 (Appendix A's c_0 = ±1 convention)
}

// Options configures Compute.
type Options struct {
	// Pool, if non-nil, computes each iteration's coefficients in
	// parallel (§3.1). Nil runs sequentially — the paper's run-time
	// option for a sequential precomputation stage.
	Pool *sched.Pool
	// Grain is the number of coefficient tasks batched per scheduler
	// task; ≤ 0 means one coefficient per task (finest grain).
	Grain int
	// Ctx records the arithmetic in the remainder phase.
	Ctx metrics.Ctx
	// Stop, if non-nil, is polled once per sequence iteration; a
	// non-nil return aborts Compute with that error (cancellation,
	// deadline, budget — the resilience layer's sequential-path hook).
	Stop func() error
}

// Compute returns the remainder sequence of p, which must be squarefree
// with all roots real and degree ≥ 1. It returns ErrNotSquarefree or
// ErrNotAllReal when the sequence reveals a precondition violation.
func Compute(p *poly.Poly, opts Options) (*Sequence, error) {
	n := p.Degree()
	if n < 1 {
		return nil, fmt.Errorf("remseq: degree %d polynomial has no roots to isolate", n)
	}
	ctx := opts.Ctx.In(metrics.PhaseRemainder)

	// Coefficient table: f[i][j] = coefficient of x^j in F_i, deg F_i = n-i.
	f := make([][]*mp.Int, n+1)
	f[0] = coeffs(p, n)
	f[1] = coeffs(p.Derivative(), n-1)

	s := &Sequence{N: n}
	s.Q = make([]*poly.Poly, n)

	one := mp.NewInt(1)
	for i := 1; i < n; i++ {
		if opts.Stop != nil {
			if err := opts.Stop(); err != nil {
				return nil, err
			}
		}
		ci := f[i][n-i]      // c_i
		ci1 := f[i-1][n-i+1] // c_{i-1}
		if ci.IsZero() {
			return nil, classify(p)
		}
		// q_{i,1} = c_{i-1}·c_i ; q_{i,0} = c_i·f_{i-1,n-i} - f_{i,n-i-1}·c_{i-1}.
		q1 := ctx.Mul(ci1, ci)
		var fiLow *mp.Int
		if n-i-1 >= 0 {
			fiLow = f[i][n-i-1]
		} else {
			fiLow = new(mp.Int)
		}
		q0 := ctx.Sub(ctx.Mul(ci, f[i-1][n-i]), ctx.Mul(fiLow, ci1))
		s.Q[i] = poly.New(q0, q1)

		cisq := ctx.Sqr(ci)
		divisor := one
		if i >= 2 {
			divisor = ctx.Sqr(ci1)
		}

		// f_{i+1,j} for 0 ≤ j ≤ n-i-1, each independent of the others.
		next := make([]*mp.Int, n-i)
		body := func(j int) {
			t := ctx.Mul(f[i][j], q0)
			if j >= 1 {
				t = ctx.Add(t, ctx.Mul(f[i][j-1], q1))
			}
			t = ctx.Sub(t, ctx.Mul(cisq, f[i-1][j]))
			if divisor.IsOne() {
				next[j] = t
			} else {
				next[j] = ctx.DivExact(t, divisor)
			}
		}
		if opts.Pool != nil {
			// On a canceled pool some iterations were drained (and a
			// straggler may still be writing next); abort without
			// reading the partial row.
			if err := opts.Pool.ParallelForTagged("precompute", n-i, opts.Grain, body); err != nil {
				return nil, err
			}
		} else {
			for j := 0; j < n-i; j++ {
				body(j)
			}
		}
		f[i+1] = next

		if f[i+1][n-i-1].IsZero() {
			// Degree dropped by more than one: abnormal sequence.
			return nil, classify(p)
		}
	}

	s.F = make([]*poly.Poly, n+1)
	s.C = make([]*mp.Int, n+1)
	s.csq = make([]*mp.Int, n+1)
	for i := 0; i <= n; i++ {
		s.F[i] = poly.New(f[i]...)
		if s.F[i].Degree() != n-i {
			return nil, classify(p)
		}
		s.C[i] = new(mp.Int).Set(f[i][n-i])
		if i == 0 {
			s.csq[0] = mp.NewInt(1)
		} else {
			s.csq[i] = new(mp.Int).Sqr(s.C[i])
		}
	}
	return s, nil
}

// classify distinguishes the two precondition violations.
func classify(p *poly.Poly) error {
	if !p.IsSquarefree() {
		return ErrNotSquarefree
	}
	return ErrNotAllReal
}

func coeffs(p *poly.Poly, deg int) []*mp.Int {
	c := make([]*mp.Int, deg+1)
	for j := 0; j <= deg; j++ {
		c[j] = new(mp.Int).Set(p.Coeff(j))
	}
	return c
}

// Csq returns c_i² under the Appendix A convention c_0 = ±1 (so
// Csq(0) == 1). The returned value must not be mutated.
func (s *Sequence) Csq(i int) *mp.Int { return s.csq[i] }

// Variations returns the number of sign variations of
// F_0(x), F_1(x), …, F_n(x) at the dyadic point x = a/2^scale, skipping
// zeros, optionally recording the evaluations in ctx.
func (s *Sequence) Variations(ctx metrics.Ctx, a *mp.Int, scale uint) int {
	v := 0
	prev := 0
	for _, fi := range s.F {
		sg := fi.SignAtCtx(ctx, a, scale)
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// VariationsAtNegInf returns the sign variations of the chain as x → -∞.
func (s *Sequence) VariationsAtNegInf() int { return s.variationsInf(true) }

// VariationsAtPosInf returns the sign variations of the chain as x → +∞.
func (s *Sequence) VariationsAtPosInf() int { return s.variationsInf(false) }

func (s *Sequence) variationsInf(negInf bool) int {
	v := 0
	prev := 0
	for _, fi := range s.F {
		var sg int
		if negInf {
			sg = fi.SignAtNegInf()
		} else {
			sg = fi.SignAtPosInf()
		}
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// RealRootCount returns the number of distinct real roots of F_0 by
// Sturm's theorem applied to the whole real line.
func (s *Sequence) RealRootCount() int {
	return s.VariationsAtNegInf() - s.VariationsAtPosInf()
}

// CountRootsBelow returns the number of roots of F_0 in (-∞, a/2^scale),
// counting a root at the point itself as not below (Sturm variations
// skip zeros, so a chain zero at the sample point is attributed
// consistently for both endpoints of an interval query).
func (s *Sequence) CountRootsBelow(ctx metrics.Ctx, a *mp.Int, scale uint) int {
	return s.VariationsAtNegInf() - s.Variations(ctx, a, scale)
}

// Validate checks the Sturm-count invariant that F_0 has exactly N
// distinct real roots; it returns ErrNotAllReal otherwise. Compute's
// structural checks catch most violations, but a normal remainder
// sequence can still arise from polynomials with complex roots (e.g.
// x²+1), and this global count is the sound final check.
func (s *Sequence) Validate() error {
	if s.RealRootCount() != s.N {
		return ErrNotAllReal
	}
	return nil
}

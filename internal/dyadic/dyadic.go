// Package dyadic implements exact dyadic rational numbers n/2^s. The
// paper's implementation performs all computation over the integers by
// identifying each rational x it encounters with the integer 2^µ·x
// (§3.3); Dyadic is that identification made explicit, carrying the
// scale alongside the scaled integer so that interval endpoints, grid
// points, and Newton iterates of different precisions can be mixed
// exactly and without a denominator GCD.
package dyadic

import (
	"fmt"
	"math/big"

	"realroots/internal/mp"
)

// A Dyadic is the exact rational Num/2^Scale. Dyadics are immutable:
// operations return new values. The canonical form has an odd numerator
// or zero scale; the zero value is a usable 0.
type Dyadic struct {
	num   *mp.Int
	scale uint
}

// New returns num/2^scale in canonical form. The numerator is copied.
func New(num *mp.Int, scale uint) Dyadic {
	d := Dyadic{num: new(mp.Int).Set(num), scale: scale}
	return d.normalize()
}

// FromInt returns the dyadic equal to the integer v.
func FromInt(v *mp.Int) Dyadic { return New(v, 0) }

// FromInt64 returns the dyadic equal to the integer v.
func FromInt64(v int64) Dyadic { return New(mp.NewInt(v), 0) }

func (d Dyadic) normalize() Dyadic {
	if d.num == nil {
		d.num = new(mp.Int)
	}
	if d.num.IsZero() {
		d.scale = 0
		return d
	}
	if d.scale == 0 {
		return d
	}
	tz := d.num.TrailingZeros()
	if tz > d.scale {
		tz = d.scale
	}
	if tz > 0 {
		d.num = new(mp.Int).Rsh(d.num, tz)
		d.scale -= tz
	}
	return d
}

// Num returns the canonical numerator. It must not be mutated.
func (d Dyadic) Num() *mp.Int {
	if d.num == nil {
		return new(mp.Int)
	}
	return d.num
}

// Scale returns the canonical scale s in n/2^s.
func (d Dyadic) Scale() uint { return d.scale }

// ScaledNum returns d·2^s as an integer. It panics if d is not an
// integer multiple of 2^-s (i.e. if the canonical scale exceeds s).
func (d Dyadic) ScaledNum(s uint) *mp.Int {
	if d.scale > s {
		panic(fmt.Sprintf("dyadic: %v not representable at scale %d", d, s))
	}
	return new(mp.Int).Lsh(d.Num(), s-d.scale)
}

// Sign returns the sign of d.
func (d Dyadic) Sign() int { return d.Num().Sign() }

// Neg returns -d.
func (d Dyadic) Neg() Dyadic {
	return Dyadic{num: new(mp.Int).Neg(d.Num()), scale: d.scale}
}

// align returns the numerators of a and b at their common scale.
func align(a, b Dyadic) (x, y *mp.Int, s uint) {
	s = a.scale
	if b.scale > s {
		s = b.scale
	}
	x = new(mp.Int).Lsh(a.Num(), s-a.scale)
	y = new(mp.Int).Lsh(b.Num(), s-b.scale)
	return x, y, s
}

// Add returns d+e.
func (d Dyadic) Add(e Dyadic) Dyadic {
	x, y, s := align(d, e)
	return Dyadic{num: x.Add(x, y), scale: s}.normalize()
}

// Sub returns d-e.
func (d Dyadic) Sub(e Dyadic) Dyadic {
	x, y, s := align(d, e)
	return Dyadic{num: x.Sub(x, y), scale: s}.normalize()
}

// Mul returns d·e.
func (d Dyadic) Mul(e Dyadic) Dyadic {
	return Dyadic{num: new(mp.Int).Mul(d.Num(), e.Num()), scale: d.scale + e.scale}.normalize()
}

// MulPow2 returns d·2^k for any (possibly negative) k.
func (d Dyadic) MulPow2(k int) Dyadic {
	if d.Sign() == 0 {
		return d
	}
	if k >= 0 {
		if int(d.scale) >= k {
			return Dyadic{num: d.Num(), scale: d.scale - uint(k)}
		}
		return Dyadic{num: new(mp.Int).Lsh(d.Num(), uint(k)-d.scale), scale: 0}
	}
	return Dyadic{num: d.Num(), scale: d.scale + uint(-k)}.normalize()
}

// Half returns d/2.
func (d Dyadic) Half() Dyadic { return d.MulPow2(-1) }

// Mid returns the midpoint (d+e)/2.
func (d Dyadic) Mid(e Dyadic) Dyadic { return d.Add(e).Half() }

// Cmp compares d and e, returning -1, 0, or +1.
func (d Dyadic) Cmp(e Dyadic) int {
	x, y, _ := align(d, e)
	return x.Cmp(y)
}

// Equal reports d == e.
func (d Dyadic) Equal(e Dyadic) bool { return d.Cmp(e) == 0 }

// IsInt reports whether d is an integer.
func (d Dyadic) IsInt() bool { return d.scale == 0 }

// CeilGrid returns the µ-approximation of d in the paper's sense
// (§1): the smallest integer multiple of 2^-µ that is ≥ d, i.e.
// 2^-µ·⌈2^µ·d⌉.
func (d Dyadic) CeilGrid(mu uint) Dyadic {
	if d.scale <= mu {
		return d // already on the grid
	}
	// ⌈n/2^(scale-µ)⌉ = -⌊-n/2^(scale-µ)⌋.
	sh := d.scale - mu
	n := new(mp.Int).Neg(d.Num())
	n.Rsh(n, sh)
	n.Neg(n)
	return Dyadic{num: n, scale: mu}.normalize()
}

// FloorGrid returns the largest integer multiple of 2^-µ that is ≤ d.
func (d Dyadic) FloorGrid(mu uint) Dyadic {
	if d.scale <= mu {
		return d
	}
	n := new(mp.Int).Rsh(d.Num(), d.scale-mu)
	return Dyadic{num: n, scale: mu}.normalize()
}

// OnGrid reports whether d is an integer multiple of 2^-µ.
func (d Dyadic) OnGrid(mu uint) bool { return d.scale <= mu }

// GridStep returns the grid spacing 2^-µ as a Dyadic.
func GridStep(mu uint) Dyadic {
	return Dyadic{num: mp.NewInt(1), scale: mu}
}

// Rat returns d as an exact big.Rat (for the public API boundary).
func (d Dyadic) Rat() *big.Rat {
	den := new(big.Int).Lsh(big.NewInt(1), d.scale)
	return new(big.Rat).SetFrac(d.Num().ToBig(), den)
}

// Float64 returns the nearest float64 to d (for diagnostics only).
func (d Dyadic) Float64() float64 {
	f, _ := d.Rat().Float64()
	return f
}

// String renders d exactly, e.g. "-13/2^4".
func (d Dyadic) String() string {
	if d.scale == 0 {
		return d.Num().String()
	}
	return fmt.Sprintf("%s/2^%d", d.Num(), d.scale)
}

// Decimal renders d as a decimal numeral with the given number of
// fractional digits, rounding toward zero ("3.1415").
func (d Dyadic) Decimal(digits int) string {
	n := d.Num()
	neg := n.Sign() < 0
	abs := new(mp.Int).Abs(n)
	// abs·10^digits >> scale gives the scaled decimal, truncated.
	p10 := mp.NewInt(1)
	ten := mp.NewInt(10)
	for i := 0; i < digits; i++ {
		p10 = new(mp.Int).Mul(p10, ten)
	}
	v := new(mp.Int).Mul(abs, p10)
	v.Rsh(v, d.scale)
	s := v.String()
	for len(s) <= digits {
		s = "0" + s
	}
	intPart, fracPart := s[:len(s)-digits], s[len(s)-digits:]
	out := intPart
	if digits > 0 {
		out += "." + fracPart
	}
	if neg {
		out = "-" + out
	}
	return out
}

package dyadic

import (
	"math/big"
	"testing"

	"realroots/internal/mp"
)

func FuzzDyadicArithmetic(f *testing.F) {
	f.Add(int64(3), uint(2), int64(-7), uint(5))
	f.Add(int64(0), uint(0), int64(1), uint(30))
	f.Fuzz(func(t *testing.T, an int64, as uint, bn int64, bs uint) {
		as %= 64
		bs %= 64
		a := New(mp.NewInt(an), as)
		b := New(mp.NewInt(bn), bs)
		ra, rb := a.Rat(), b.Rat()
		if a.Add(b).Rat().Cmp(new(big.Rat).Add(ra, rb)) != 0 {
			t.Fatalf("Add(%v, %v)", a, b)
		}
		if a.Sub(b).Rat().Cmp(new(big.Rat).Sub(ra, rb)) != 0 {
			t.Fatalf("Sub(%v, %v)", a, b)
		}
		if a.Mul(b).Rat().Cmp(new(big.Rat).Mul(ra, rb)) != 0 {
			t.Fatalf("Mul(%v, %v)", a, b)
		}
		if a.Cmp(b) != ra.Cmp(rb) {
			t.Fatalf("Cmp(%v, %v)", a, b)
		}
	})
}

func FuzzGridRounding(f *testing.F) {
	f.Add(int64(7), uint(5), uint(2))
	f.Fuzz(func(t *testing.T, n int64, s uint, mu uint) {
		s %= 64
		mu %= 64
		d := New(mp.NewInt(n), s)
		up := d.CeilGrid(mu)
		dn := d.FloorGrid(mu)
		if dn.Cmp(d) > 0 || up.Cmp(d) < 0 {
			t.Fatalf("grid rounding not bracketing: %v in [%v, %v]?", d, dn, up)
		}
		if !up.OnGrid(mu) || !dn.OnGrid(mu) {
			t.Fatalf("rounded values off grid: %v %v (µ=%d)", dn, up, mu)
		}
		if up.Sub(dn).Cmp(GridStep(mu)) > 0 {
			t.Fatalf("rounding gap exceeds grid step for %v at µ=%d", d, mu)
		}
	})
}

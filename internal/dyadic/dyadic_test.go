package dyadic

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/mp"
)

func randDyadic(r *rand.Rand) Dyadic {
	return New(mp.RandInt(r, 1+r.Intn(60)), uint(r.Intn(40)))
}

func rat(d Dyadic) *big.Rat { return d.Rat() }

func TestNormalization(t *testing.T) {
	d := New(mp.NewInt(8), 3) // 8/8 = 1
	if d.Scale() != 0 || d.Num().Int64() != 1 {
		t.Errorf("8/2^3 not normalized: %v", d)
	}
	d = New(mp.NewInt(6), 2) // 6/4 = 3/2
	if d.Scale() != 1 || d.Num().Int64() != 3 {
		t.Errorf("6/2^2 not normalized: %v", d)
	}
	d = New(mp.NewInt(0), 17)
	if d.Scale() != 0 || d.Sign() != 0 {
		t.Errorf("0/2^17 not normalized: %v", d)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d Dyadic
	if d.Sign() != 0 || d.String() != "0" {
		t.Errorf("zero value: %v sign %d", d, d.Sign())
	}
	if got := d.Add(FromInt64(3)); got.Num().Int64() != 3 {
		t.Errorf("0+3 = %v", got)
	}
}

func TestQuickFieldOpsMatchBigRat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDyadic(r), randDyadic(r)
		if rat(a.Add(b)).Cmp(new(big.Rat).Add(rat(a), rat(b))) != 0 {
			return false
		}
		if rat(a.Sub(b)).Cmp(new(big.Rat).Sub(rat(a), rat(b))) != 0 {
			return false
		}
		if rat(a.Mul(b)).Cmp(new(big.Rat).Mul(rat(a), rat(b))) != 0 {
			return false
		}
		if a.Cmp(b) != rat(a).Cmp(rat(b)) {
			return false
		}
		return rat(a.Neg()).Cmp(new(big.Rat).Neg(rat(a))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulPow2(t *testing.T) {
	d := New(mp.NewInt(3), 2) // 3/4
	if got := d.MulPow2(2); got.Cmp(FromInt64(3)) != 0 {
		t.Errorf("3/4·4 = %v", got)
	}
	if got := d.MulPow2(-3); !got.Equal(New(mp.NewInt(3), 5)) {
		t.Errorf("3/4·2^-3 = %v", got)
	}
	if got := d.MulPow2(10); got.Cmp(FromInt64(768)) != 0 {
		t.Errorf("3/4·2^10 = %v", got)
	}
	z := FromInt64(0)
	if got := z.MulPow2(5); got.Sign() != 0 {
		t.Errorf("0·2^5 = %v", got)
	}
}

func TestQuickMulPow2MatchesRat(t *testing.T) {
	f := func(seed int64, kRaw int8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randDyadic(r)
		k := int(kRaw) % 50
		got := rat(d.MulPow2(k))
		want := new(big.Rat).Set(rat(d))
		if k >= 0 {
			want.Mul(want, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(k))))
		} else {
			want.Quo(want, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(-k))))
		}
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMid(t *testing.T) {
	a, b := FromInt64(1), FromInt64(2)
	m := a.Mid(b)
	if !m.Equal(New(mp.NewInt(3), 1)) {
		t.Errorf("mid(1,2) = %v", m)
	}
}

func TestCeilGrid(t *testing.T) {
	cases := []struct {
		num   int64
		scale uint
		mu    uint
		want  string
	}{
		{5, 3, 1, "3/2^1"},   // 5/8 → ceil to halves = 1... wait 5/8 = 0.625 → ceil at 2^-1 grid = 1? No: ⌈2·0.625⌉/2 = ⌈1.25⌉/2 = 2/2 = 1
		{7, 3, 2, "1"},       // 7/8 = 0.875 → ⌈3.5⌉/4 = 4/4 = 1
		{-5, 3, 1, "-1/2^1"}, // -0.625 → ⌈-1.25⌉/2 = -1/2
		{3, 1, 3, "3/2^1"},   // already on grid
		{1, 0, 4, "1"},       // integer stays
	}
	// Fix first expectation: ⌈2·(5/8)⌉/2 = ⌈1.25⌉ / 2 = 2/2 = 1.
	cases[0].want = "1"
	for _, c := range cases {
		d := New(mp.NewInt(c.num), c.scale)
		if got := d.CeilGrid(c.mu).String(); got != c.want {
			t.Errorf("CeilGrid(%d/2^%d, µ=%d) = %s, want %s", c.num, c.scale, c.mu, got, c.want)
		}
	}
}

func TestQuickGridLaws(t *testing.T) {
	f := func(seed int64, muRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randDyadic(r)
		mu := uint(muRaw) % 30
		up := d.CeilGrid(mu)
		dn := d.FloorGrid(mu)
		// FloorGrid ≤ d ≤ CeilGrid, both on the grid, within one step.
		if dn.Cmp(d) > 0 || up.Cmp(d) < 0 {
			return false
		}
		if !up.OnGrid(mu) || !dn.OnGrid(mu) {
			return false
		}
		if up.Sub(dn).Cmp(GridStep(mu)) > 0 {
			return false
		}
		// If d is on the grid, both round to d.
		if d.OnGrid(mu) {
			return up.Equal(d) && dn.Equal(d)
		}
		// Otherwise they differ by exactly one step.
		return up.Sub(dn).Equal(GridStep(mu))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestScaledNum(t *testing.T) {
	d := New(mp.NewInt(3), 2) // 3/4
	if got := d.ScaledNum(4); got.Int64() != 12 {
		t.Errorf("ScaledNum(3/4, 4) = %s, want 12", got)
	}
	if got := d.ScaledNum(2); got.Int64() != 3 {
		t.Errorf("ScaledNum(3/4, 2) = %s, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ScaledNum below scale did not panic")
		}
	}()
	d.ScaledNum(1)
}

func TestDecimal(t *testing.T) {
	cases := []struct {
		d      Dyadic
		digits int
		want   string
	}{
		{New(mp.NewInt(1), 1), 4, "0.5000"},
		{New(mp.NewInt(-3), 2), 2, "-0.75"},
		{FromInt64(42), 0, "42"},
		{New(mp.NewInt(1), 3), 2, "0.12"}, // 0.125 truncated
		{New(mp.NewInt(-1), 4), 1, "-0.0"},
	}
	// -1/16 = -0.0625: one digit truncated toward zero = "-0.0".
	for _, c := range cases {
		if got := c.d.Decimal(c.digits); got != c.want {
			t.Errorf("Decimal(%v, %d) = %q, want %q", c.d, c.digits, got, c.want)
		}
	}
}

func TestFloat64(t *testing.T) {
	d := New(mp.NewInt(-5), 2)
	if got := d.Float64(); got != -1.25 {
		t.Errorf("Float64 = %v", got)
	}
}

func TestHalfAndGridStep(t *testing.T) {
	one := FromInt64(1)
	h := one.Half()
	if !h.Equal(GridStep(1)) {
		t.Errorf("1/2 = %v", h)
	}
	if !GridStep(0).Equal(one) {
		t.Errorf("GridStep(0) = %v", GridStep(0))
	}
}

// Benchmarks mapping to the paper's tables and figures (see DESIGN.md
// §3 for the index). These run on reduced degree grids so that
// `go test -bench=.` finishes quickly; cmd/rootbench reproduces the
// full-size sweeps.
package realroots

import (
	"fmt"
	"testing"

	"realroots/internal/core"
	"realroots/internal/harness"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/model"
	"realroots/internal/mp"
	"realroots/internal/remseq"
	"realroots/internal/sturm"
	"realroots/internal/vca"
)

var benchDegrees = []int{10, 20, 30}

// BenchmarkSingleProcessor reproduces Table 2's single-processor grid.
func BenchmarkSingleProcessor(b *testing.B) {
	for _, n := range benchDegrees {
		for _, mu := range []uint{4, 8, 16, 24, 32} {
			p := harness.Instance(1, n)
			b.Run(fmt.Sprintf("n=%d/mu=%d", n, mu), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.FindRoots(p, core.Options{Mu: mu}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSpeedup reproduces the worker sweep behind Tables 3-7 and
// Figures 9-13.
func BenchmarkSpeedup(b *testing.B) {
	for _, n := range benchDegrees {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			p := harness.Instance(1, n)
			b.Run(fmt.Sprintf("n=%d/P=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.FindRoots(p, core.Options{Mu: 16, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVsSturm reproduces Figure 8: the algorithm on one worker
// against the sequential Sturm baseline at µ = 30.
func BenchmarkVsSturm(b *testing.B) {
	const mu = 30
	for _, n := range benchDegrees {
		p := harness.Instance(1, n)
		b.Run(fmt.Sprintf("algorithm/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindRoots(p, core.Options{Mu: mu}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sturm/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sturm.FindRoots(p, mu, metrics.Ctx{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("vca/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vca.FindRoots(p, mu, metrics.Ctx{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhases reports the per-phase multiplication counts and bit
// complexities behind Table 1 and Figures 2-7 as benchmark metrics,
// alongside the model's predictions.
func BenchmarkPhases(b *testing.B) {
	for _, n := range benchDegrees {
		for _, mu := range []uint{8, 32} {
			p := harness.Instance(1, n)
			b.Run(fmt.Sprintf("n=%d/mu=%d", n, mu), func(b *testing.B) {
				var rep metrics.Report
				for i := 0; i < b.N; i++ {
					var c metrics.Counters
					if _, err := core.FindRoots(p, core.Options{Mu: mu, Counters: &c}); err != nil {
						b.Fatal(err)
					}
					rep = c.Snapshot()
				}
				pred := model.Params{
					N: n, M: p.MaxCoeffBits(), Mu: mu,
					R: p.RootBound().BitLen() - 1, Range: 6,
				}.Predict()
				b.ReportMetric(float64(rep.Total().Muls), "muls-observed")
				b.ReportMetric(pred.Total().Muls, "muls-predicted")
				b.ReportMetric(float64(rep.Phases[metrics.PhaseBisection].Muls), "bisect-muls")
				b.ReportMetric(float64(rep.Phases[metrics.PhaseBisection].MulBits), "bisect-bits")
			})
		}
	}
}

// BenchmarkIntervalMethods is ablation abl1: the paper's hybrid interval
// solver against pure bisection and pure Newton.
func BenchmarkIntervalMethods(b *testing.B) {
	p := harness.Instance(1, 25)
	for _, m := range []interval.Method{interval.MethodHybrid, interval.MethodBisection, interval.MethodNewton} {
		for _, mu := range []uint{8, 64} {
			b.Run(fmt.Sprintf("%v/mu=%d", m, mu), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.FindRoots(p, core.Options{Mu: mu, Method: m}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMulAlgorithms is ablation abl2: the paper's schoolbook "mp"
// arithmetic against the subquadratic fast profile.
func BenchmarkMulAlgorithms(b *testing.B) {
	p := harness.Instance(1, 30)
	for _, prof := range []mp.Profile{mp.Schoolbook, mp.Fast} {
		name := "schoolbook"
		if prof == mp.Fast {
			name = "karatsuba"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindRoots(p, core.Options{Mu: 32, Profile: prof}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrecompute is ablation abl3: the paper's run-time option of
// computing the remainder sequence sequentially vs in parallel.
func BenchmarkPrecompute(b *testing.B) {
	p := harness.Instance(1, 30)
	for _, seq := range []bool{true, false} {
		name := "sequential"
		if !seq {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindRoots(p, core.Options{Mu: 16, Workers: 8, SequentialPrecompute: seq}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemainderSequence isolates the precomputation stage.
func BenchmarkRemainderSequence(b *testing.B) {
	for _, n := range benchDegrees {
		p := harness.Instance(1, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := remseq.Compute(p, remseq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicAPI measures the user-facing entry point end to end.
func BenchmarkPublicAPI(b *testing.B) {
	coeffs := []int64{30, -23, -8, 1}
	for i := 0; i < b.N; i++ {
		if _, err := FindRootsInt64(coeffs, &Options{Precision: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

package realroots

import "testing"

// TestMethodNamesRoundTrip pins the method names the solve server's
// request schema accepts: ParseMethod must invert String for every
// method, and reject anything else.
func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range []Method{Hybrid, Bisection, Newton} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, bad := range []string{"", "HYBRID", "secant", "hybrid "} {
		if _, err := ParseMethod(bad); err == nil {
			t.Errorf("ParseMethod(%q) accepted", bad)
		}
	}
}

// TestProfileNamesRoundTrip pins the profile names: "paper" and
// "schoolbook" are aliases for the default, "fast" selects the
// subquadratic kernels, anything else errors.
func TestProfileNamesRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		want Profile
	}{
		{"paper", ProfilePaper},
		{"schoolbook", ProfilePaper},
		{"fast", ProfileFast},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.name)
		if err != nil || got != c.want {
			t.Errorf("ParseProfile(%q) = %v, %v, want %v", c.name, got, err, c.want)
		}
	}
	if _, err := ParseProfile("karatsuba"); err == nil {
		t.Error("ParseProfile accepted an unknown name")
	}
	if got, err := ParseProfile(ProfileFast.String()); err != nil || got != ProfileFast {
		t.Errorf("ParseProfile does not invert String: %v, %v", got, err)
	}
}

// TestEstimateBitOpsSane checks the admission-control estimate is a
// usable budget: positive, monotone in each parameter, and an upper
// bound loose enough that a real solve of the estimated shape fits
// under it (rootd rejects with 422 budget_exceeded otherwise).
func TestEstimateBitOpsSane(t *testing.T) {
	base := EstimateBitOps(10, 8, 16)
	if base <= 0 {
		t.Fatalf("estimate %d not positive", base)
	}
	if e := EstimateBitOps(20, 8, 16); e <= base {
		t.Errorf("estimate not monotone in degree: %d vs %d", e, base)
	}
	if e := EstimateBitOps(10, 64, 16); e <= base {
		t.Errorf("estimate not monotone in coefficient size: %d vs %d", e, base)
	}
	if e := EstimateBitOps(10, 8, 48); e <= base {
		t.Errorf("estimate not monotone in precision: %d vs %d", e, base)
	}

	// The estimate must admit the solve it describes: use it as the
	// budget for a matching instance and expect success.
	coeffs := []int64{24, -50, 35, -10, 1} // (x-1)(x-2)(x-3)(x-4)
	budget := EstimateBitOps(4, 6, 24)
	res, err := FindRootsInt64(coeffs, &Options{Precision: 24, MaxBitOps: budget})
	if err != nil {
		t.Fatalf("solve under its own estimate failed: %v (budget %d)", err, budget)
	}
	if len(res.Roots) != 4 {
		t.Fatalf("roots = %d, want 4", len(res.Roots))
	}
}

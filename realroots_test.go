package realroots

import (
	"errors"
	"math/big"
	"sync"
	"testing"
)

func ratInt(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

func TestQuickstartSqrt2(t *testing.T) {
	res, err := FindRootsInt64([]int64{-2, 0, 1}, &Options{Precision: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree != 2 || res.Distinct != 2 || res.Precision != 32 {
		t.Fatalf("metadata: %+v", res)
	}
	sqrt2 := 1.4142135623730951
	if v := res.Roots[1].Float64(); v < sqrt2 || v > sqrt2+1e-9 {
		t.Fatalf("√2 ≈ %v", v)
	}
	if v := res.Roots[0].Float64(); v > -sqrt2+1e-9 || v < -sqrt2-1e-9 {
		t.Fatalf("-√2 ≈ %v", v)
	}
	// 32 bits of √2: the decimal rendering starts 1.41421356.
	if got := res.Roots[1].Decimal(8); got != "1.41421356" {
		t.Fatalf("Decimal = %q", got)
	}
}

func TestDefaultOptions(t *testing.T) {
	res, err := FindRootsInt64([]int64{-1, 0, 0, 1}, nil) // x³-1: root 1
	if err != nil {
		// x³-1 has complex roots; must be rejected.
		if !errors.Is(err, ErrNotAllReal) {
			t.Fatalf("err = %v", err)
		}
		return
	}
	t.Fatalf("x³-1 accepted: %+v", res)
}

func TestIntegerRootsExact(t *testing.T) {
	// (x+3)(x-1)(x-10) = x³ -8x² -23x +30.
	res, err := FindRootsInt64([]int64{30, -23, -8, 1}, &Options{Precision: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{-3, 1, 10}
	for i, w := range want {
		if res.Roots[i].Value.Cmp(ratInt(w)) != 0 {
			t.Fatalf("root %d = %v, want %d", i, res.Roots[i], w)
		}
		if res.Roots[i].Multiplicity != 1 {
			t.Fatalf("multiplicity %d", res.Roots[i].Multiplicity)
		}
	}
}

func TestRepeatedRoots(t *testing.T) {
	// (x-2)²(x+1) = x³ -3x² +4... expand: (x²-4x+4)(x+1) = x³-3x²+0x+4.
	res, err := FindRootsInt64([]int64{4, 0, -3, 1}, &Options{Precision: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct != 2 || res.Degree != 3 {
		t.Fatalf("distinct=%d degree=%d", res.Distinct, res.Degree)
	}
	if res.Roots[0].Value.Cmp(ratInt(-1)) != 0 || res.Roots[0].Multiplicity != 1 {
		t.Fatalf("root 0: %+v", res.Roots[0])
	}
	if res.Roots[1].Value.Cmp(ratInt(2)) != 0 || res.Roots[1].Multiplicity != 2 {
		t.Fatalf("root 1: %+v", res.Roots[1])
	}
}

func TestBigIntCoefficients(t *testing.T) {
	// (x - 10^20)(x + 10^20) = x² - 10^40.
	big20 := new(big.Int).Exp(big.NewInt(10), big.NewInt(20), nil)
	c0 := new(big.Int).Neg(new(big.Int).Mul(big20, big20))
	res, err := FindRoots([]*big.Int{c0, big.NewInt(0), big.NewInt(1)}, &Options{Precision: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).SetInt(big20)
	if res.Roots[1].Value.Cmp(want) != 0 {
		t.Fatalf("root = %v, want 10^20", res.Roots[1])
	}
}

func TestNilCoefficientRejected(t *testing.T) {
	if _, err := FindRoots([]*big.Int{big.NewInt(1), nil}, nil); err == nil {
		t.Fatal("nil coefficient accepted")
	}
}

func TestConstantRejected(t *testing.T) {
	if _, err := FindRootsInt64([]int64{5}, nil); err == nil {
		t.Fatal("constant accepted")
	}
	if _, err := FindRootsInt64(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestMethodsAgree(t *testing.T) {
	coeffs := []int64{30, -23, -8, 1}
	var base *Result
	for _, m := range []Method{Hybrid, Bisection, Newton} {
		res, err := FindRootsInt64(coeffs, &Options{Precision: 24, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range base.Roots {
			if base.Roots[i].Value.Cmp(res.Roots[i].Value) != 0 {
				t.Fatalf("method %d: root %d differs", m, i)
			}
		}
	}
}

func TestEigenvalues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	res, err := Eigenvalues([][]int64{{2, 1}, {1, 2}}, &Options{Precision: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 2 ||
		res.Roots[0].Value.Cmp(ratInt(1)) != 0 ||
		res.Roots[1].Value.Cmp(ratInt(3)) != 0 {
		t.Fatalf("eigenvalues: %v", res.Roots)
	}
}

func TestEigenvaluesRejectsAsymmetric(t *testing.T) {
	if _, err := Eigenvalues([][]int64{{0, 1}, {-1, 0}}, nil); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := Eigenvalues([][]int64{{1, 2}, {3}}, nil); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestIsolate(t *testing.T) {
	ivs, err := Isolate([]*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)}, &Options{Precision: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("%d intervals", len(ivs))
	}
	step := new(big.Rat).SetFrac64(1, 1024)
	for _, iv := range ivs {
		w := new(big.Rat).Sub(iv[1], iv[0])
		if w.Cmp(step) != 0 {
			t.Fatalf("interval width %v", w)
		}
	}
	// √2 ∈ (lo, hi].
	lo, _ := ivs[1][0].Float64()
	hi, _ := ivs[1][1].Float64()
	if lo >= 1.4142135623730951 || hi < 1.4142135623730951 {
		t.Fatalf("√2 not in (%v, %v]", lo, hi)
	}
}

func TestCountRealRoots(t *testing.T) {
	cases := []struct {
		coeffs []int64
		want   int
	}{
		{[]int64{-2, 0, 1}, 2},       // x²-2
		{[]int64{1, 0, 1}, 0},        // x²+1
		{[]int64{0, 1}, 1},           // x
		{[]int64{-1, 0, 0, 1}, 1},    // x³-1 (one real root)
		{[]int64{4, 0, -3, 1}, 2},    // (x-2)²(x+1): distinct count
		{[]int64{42}, 0},             // constant
		{[]int64{0, -1, 0, 0, 1}, 3}, // x⁴-x = x(x³-1): roots 0, 1 (+complex)... distinct real = 2
	}
	// Fix the last expectation: x⁴ - x = x(x-1)(x²+x+1): 2 real roots.
	cases[len(cases)-1].want = 2
	for _, c := range cases {
		bi := make([]*big.Int, len(c.coeffs))
		for i, v := range c.coeffs {
			bi[i] = big.NewInt(v)
		}
		got, err := CountRealRoots(bi)
		if err != nil {
			t.Fatalf("%v: %v", c.coeffs, err)
		}
		if got != c.want {
			t.Errorf("CountRealRoots(%v) = %d, want %d", c.coeffs, got, c.want)
		}
	}
}

func TestNotAllRealWrapped(t *testing.T) {
	_, err := FindRootsInt64([]int64{1, 0, 1}, nil)
	if !errors.Is(err, ErrNotAllReal) {
		t.Fatalf("err = %v", err)
	}
}

func TestRootStringer(t *testing.T) {
	res, err := FindRootsInt64([]int64{-1, 2}, &Options{Precision: 4}) // 2x-1
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Roots[0].String(); got != "1/2" {
		t.Fatalf("String = %q", got)
	}
	if got := res.Roots[0].Decimal(3); got != "0.500" {
		t.Fatalf("Decimal = %q", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := FindRootsInt64([]int64{30, -23, -8, 1}, &Options{Precision: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not populated")
	}
	if res.Precompute <= 0 || res.TreeSolve <= 0 {
		t.Errorf("stage stats: precompute=%v treesolve=%v", res.Precompute, res.TreeSolve)
	}
}

func TestFindRealRootsGeneralPolynomial(t *testing.T) {
	// (x²+1)(x-3)(x+5): two real roots among four.
	// (x²+1)(x²+2x-15) = x⁴+2x³-15x² + x²+2x-15 = x⁴+2x³-14x²+2x-15.
	coeffs := []*big.Int{
		big.NewInt(-15), big.NewInt(2), big.NewInt(-14), big.NewInt(2), big.NewInt(1),
	}
	res, err := FindRealRoots(coeffs, &Options{Precision: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct != 2 {
		t.Fatalf("found %d real roots: %v", res.Distinct, res.Roots)
	}
	if res.Roots[0].Value.Cmp(ratInt(-5)) != 0 || res.Roots[1].Value.Cmp(ratInt(3)) != 0 {
		t.Fatalf("roots = %v", res.Roots)
	}
}

func TestFindRealRootsMatchesFindRootsOnRealInputs(t *testing.T) {
	coeffs := []*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)}
	a, err := FindRoots(coeffs, &Options{Precision: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindRealRoots(coeffs, &Options{Precision: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != len(b.Roots) {
		t.Fatalf("%d vs %d roots", len(a.Roots), len(b.Roots))
	}
	for i := range a.Roots {
		if a.Roots[i].Value.Cmp(b.Roots[i].Value) != 0 {
			t.Fatalf("root %d: %v vs %v", i, a.Roots[i], b.Roots[i])
		}
	}
}

func TestFindRealRootsErrors(t *testing.T) {
	if _, err := FindRealRoots([]*big.Int{big.NewInt(7)}, nil); err == nil {
		t.Error("constant accepted")
	}
	if _, err := FindRealRoots([]*big.Int{nil, big.NewInt(1)}, nil); err == nil {
		t.Error("nil coefficient accepted")
	}
}

func TestConcurrentPublicAPIUse(t *testing.T) {
	// The library must be safe for concurrent use by independent callers
	// (no shared mutable state outside explicit options).
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			coeffs := []int64{int64(30 + g), -23, -8, 1}
			for i := 0; i < 5; i++ {
				if _, err := FindRootsInt64(coeffs, &Options{Precision: 16, Workers: 1 + g%3}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
